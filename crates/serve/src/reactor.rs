//! The event-driven connection backend ([`ServeBackend::Reactor`]).
//!
//! Thread-per-connection bounds concurrency by OS threads; this backend
//! bounds it by *readiness*. One reactor thread owns every socket: it
//! polls the listener, a shutdown self-pipe, and all live connections
//! through [`crate::poll`], and drives each connection through a small
//! state machine —
//!
//! ```text
//! Reading ──complete request──▶ Processing ──completion──▶ Writing
//!    ▲          (worker pool runs respond())                  │
//!    └────────────────reply fully flushed─────────────────────┘
//! ```
//!
//! - **Reading**: non-blocking reads accumulate into a per-connection
//!   buffer until one whole AVWF envelope is present (validated by
//!   header: magic, version, length bound — the checksum is verified by
//!   the worker's ordinary `read_request`).
//! - **Processing**: the raw request bytes go to a fixed pool of
//!   [`ServerConfig::worker_threads`] workers over a job queue; the
//!   worker runs the same `respond` path as the threaded backend
//!   (panic isolation, shedding, counters included) into a staging
//!   buffer and posts the finished reply back, waking the reactor
//!   through the self-pipe.
//! - **Writing**: the staged reply drains to the socket under
//!   `POLLOUT`; when it is flushed the connection returns to Reading
//!   (or closes, for shed / malformed / poisoned sessions).
//!
//! Everything user-visible is carried over from the threaded backend:
//! the connection cap answers `ERR_BUSY` in-band (inline in the reactor
//! loop — no thread is ever spawned for a shed connection), read/write
//! timeouts drop stalled clients, accept errors back off and are
//! counted, shutdown wakes the loop deterministically and drains
//! in-flight replies bounded by `drain_timeout`, and the `Stats` wire
//! shape is byte-identical because the counters are updated by the very
//! same code. Server-side chaos (`spawn_chaos`) also works: each
//! connection's bytes are routed through a [`FaultyTransport`] over an
//! in-memory pair of buffers.
//!
//! [`ServeBackend::Reactor`]: crate::server::ServeBackend::Reactor
//! [`ServerConfig::worker_threads`]: crate::server::ServerConfig::worker_threads

use crate::fault::{FaultScript, FaultyTransport};
use crate::poll::{poll, AcceptBackoff, PollEntry, Waker};
use crate::protocol::{write_response, write_response_v, Response, ERR_BAD_REQUEST, ERR_BUSY};
use crate::server::{process_request_bytes, Shared, SHED_CONNECTION_MSG};
use crate::stats::{CTR_ACCEPT_ERRORS, CTR_SHED_CONNECTIONS};
use crate::wire::{CHECKSUM_BYTES, HEADER_BYTES, MAGIC, MAX_PAYLOAD, V1, VERSION};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Max socket reads per connection per readiness round — keeps one
/// firehose client from starving the rest of the loop.
const READS_PER_ROUND: usize = 64;

/// One decoded-enough request on its way to the worker pool.
struct Job {
    token: u64,
    request: Vec<u8>,
    version: u16,
    t0: Instant,
}

/// A worker's finished reply. An empty `reply` means "just close the
/// connection".
struct Completion {
    token: u64,
    reply: Vec<u8>,
    version: u16,
    close_after: bool,
}

/// A tiny Mutex+Condvar MPMC job queue (std-only; `mpsc::Receiver` is
/// single-consumer, and the workspace vendors no channel crate).
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a job; `false` means the queue is closed (shutdown) and
    /// the job was not accepted.
    fn push(&self, job: Job) -> bool {
        let mut g = self.lock();
        if g.closed {
            return false;
        }
        g.jobs.push_back(job);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, so accepted work always completes.
    fn pop(&self) -> Option<Job> {
        let mut g = self.lock();
        loop {
            if let Some(job) = g.jobs.pop_front() {
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    queue: Arc<JobQueue>,
    done: mpsc::Sender<Completion>,
    waker: Arc<Waker>,
) {
    while let Some(job) = queue.pop() {
        let (reply, version, close_after) =
            process_request_bytes(&shared, &job.request, job.version, job.t0);
        let sent = done.send(Completion {
            token: job.token,
            reply,
            version,
            close_after,
        });
        waker.wake();
        if sent.is_err() {
            break; // reactor already gone
        }
    }
}

/// The running reactor backend: its loop thread, worker pool, and the
/// handles `FrameServer::stop` uses to wind everything down.
pub(crate) struct ReactorEngine {
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<JobQueue>,
    waker: Arc<Waker>,
}

impl ReactorEngine {
    /// Starts the reactor loop and its worker pool over `listener`.
    pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> io::Result<ReactorEngine> {
        listener.set_nonblocking(true)?;
        let waker = Arc::new(Waker::new()?);
        let queue = Arc::new(JobQueue::new());
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let workers = (0..shared.config.worker_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                let done = done_tx.clone();
                let waker = Arc::clone(&waker);
                std::thread::spawn(move || worker_loop(shared, queue, done, waker))
            })
            .collect();
        let loop_waker = Arc::clone(&waker);
        let loop_queue = Arc::clone(&queue);
        let reactor = std::thread::spawn(move || {
            Reactor {
                shared,
                listener: Some(listener),
                waker: loop_waker,
                queue: loop_queue,
                completions: done_rx,
                conns: HashMap::new(),
                next_token: 0,
                backoff: AcceptBackoff::new(),
                cooldown: None,
                draining: None,
            }
            .run()
        });
        Ok(ReactorEngine {
            reactor: Some(reactor),
            workers,
            queue,
            waker,
        })
    }

    /// Winds the backend down. The caller has already raised the shared
    /// shutdown flag; the reactor loop drains in-flight replies (bounded
    /// by `drain_timeout`) before its thread exits, and the workers exit
    /// once the closed queue runs dry.
    pub(crate) fn stop(&mut self) {
        self.queue.close();
        self.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Where a connection's state machine currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Accumulating request bytes.
    Reading,
    /// A worker is computing the reply.
    Processing,
    /// Draining the staged reply to the socket.
    Writing,
}

/// Server-side chaos plumbing for one connection: the shared
/// [`FaultyTransport`] normally wraps a blocking socket, so here it
/// wraps an in-memory byte pair instead — raw socket bytes are pushed
/// into `inbound`, faulted bytes are pulled out the other side, and
/// replies written through the transport land in `outbound` for the
/// write buffer. (`Rc` is fine: connections never leave the reactor
/// thread.)
struct FaultChannel {
    transport: FaultyTransport<SharedBuf>,
    buf: Rc<RefCell<FaultBuf>>,
}

#[derive(Default)]
struct FaultBuf {
    inbound: VecDeque<u8>,
    outbound: Vec<u8>,
    eof: bool,
}

struct SharedBuf(Rc<RefCell<FaultBuf>>);

impl Read for SharedBuf {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut b = self.0.borrow_mut();
        if b.inbound.is_empty() {
            return if b.eof {
                Ok(0)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "no buffered bytes",
                ))
            };
        }
        let n = out.len().min(b.inbound.len());
        for slot in out[..n].iter_mut() {
            *slot = b.inbound.pop_front().expect("length checked above");
        }
        Ok(n)
    }
}

impl Write for SharedBuf {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().outbound.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl FaultChannel {
    fn new(script: Arc<FaultScript>) -> FaultChannel {
        let buf = Rc::new(RefCell::new(FaultBuf::default()));
        FaultChannel {
            transport: FaultyTransport::new(SharedBuf(Rc::clone(&buf)), script),
            buf,
        }
    }
}

/// One connection's state.
struct Conn {
    stream: TcpStream,
    phase: Phase,
    /// Refused at the connection cap? A shed connection lives just
    /// long enough to answer its first request with `ERR_BUSY`.
    shed: bool,
    /// Whether this connection holds an `active_connections` slot.
    counted: bool,
    session_version: u16,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_write: bool,
    /// The peer half-closed (or an injected truncation fired): serve
    /// what is already buffered, accept nothing further.
    reads_closed: bool,
    /// When this connection is dropped for stalling (read or write
    /// timeout, depending on phase); `None` while Processing.
    deadline: Option<Instant>,
    faults: Option<FaultChannel>,
}

impl Conn {
    /// Feeds raw socket bytes toward `read_buf`, through the fault
    /// transport when chaos is installed.
    fn ingest(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &self.faults {
            None => {
                self.read_buf.extend_from_slice(bytes);
                Ok(())
            }
            Some(fc) => {
                fc.buf.borrow_mut().inbound.extend(bytes.iter().copied());
                self.drain_faulted()
            }
        }
    }

    /// Pulls whatever the fault transport will release into `read_buf`.
    fn drain_faulted(&mut self) -> io::Result<()> {
        let Some(fc) = &mut self.faults else {
            return Ok(());
        };
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match fc.transport.read(&mut tmp) {
                Ok(0) => {
                    self.reads_closed = true;
                    return Ok(());
                }
                Ok(n) => self.read_buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// The raw socket hit EOF.
    fn note_raw_eof(&mut self) {
        match &self.faults {
            None => self.reads_closed = true,
            Some(fc) => {
                fc.buf.borrow_mut().eof = true;
                if self.drain_faulted().is_err() {
                    self.reads_closed = true;
                }
            }
        }
    }
}

/// Pre-dispatch framing check over the connection's read buffer.
enum FrameCheck {
    /// Not enough bytes for a verdict yet.
    Incomplete,
    /// The header can never become a valid envelope.
    Malformed,
    /// One whole envelope of this many bytes is buffered.
    Complete(usize),
}

fn frame_request(buf: &[u8]) -> FrameCheck {
    if buf.len() < HEADER_BYTES as usize {
        return FrameCheck::Incomplete;
    }
    if buf[0..4] != MAGIC {
        return FrameCheck::Malformed;
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version == 0 || version > VERSION {
        return FrameCheck::Malformed;
    }
    let len = u64::from_le_bytes(buf[8..16].try_into().expect("sliced to 8 bytes"));
    if len > MAX_PAYLOAD {
        return FrameCheck::Malformed;
    }
    let total = (HEADER_BYTES + len + CHECKSUM_BYTES) as usize;
    if buf.len() < total {
        FrameCheck::Incomplete
    } else {
        FrameCheck::Complete(total)
    }
}

/// What `try_dispatch` decided, computed under the connection borrow and
/// acted on after it.
enum Dispatch {
    Wait,
    Close,
    Malformed { message: String, version: u16 },
    Shed,
    Run { request: Vec<u8>, version: u16 },
}

enum FlushResult {
    Pending,
    Done,
    Broken,
}

struct Reactor {
    shared: Arc<Shared>,
    /// `None` once draining begins — dropping it closes the listening
    /// socket, so new connects are refused at the kernel.
    listener: Option<TcpListener>,
    waker: Arc<Waker>,
    queue: Arc<JobQueue>,
    completions: mpsc::Receiver<Completion>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    backoff: AcceptBackoff,
    /// Accept-error cooldown: while set, the listener stays out of the
    /// poll set entirely (no hot-spin on EMFILE).
    cooldown: Option<Instant>,
    /// Drain deadline, set when shutdown is observed.
    draining: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        loop {
            while let Ok(completion) = self.completions.try_recv() {
                self.apply_completion(completion);
            }
            if self.draining.is_none() && self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if let Some(deadline) = self.draining {
                let busy = self
                    .conns
                    .values()
                    .any(|c| matches!(c.phase, Phase::Processing | Phase::Writing));
                if !busy || Instant::now() >= deadline {
                    break;
                }
            }
            let now = Instant::now();
            if self.cooldown.is_some_and(|until| until <= now) {
                self.cooldown = None;
            }
            self.expire_deadlines(now);
            let (entries, tokens, listener_armed) = self.poll_set();
            let ready = match poll(&entries, self.poll_timeout()) {
                Ok(ready) => ready,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            if ready[0].readable {
                self.waker.drain();
            }
            let mut base = 1;
            if listener_armed {
                if !ready[1].is_empty() {
                    self.accept_burst();
                }
                base = 2;
            }
            for (i, &token) in tokens.iter().enumerate() {
                let r = ready[base + i];
                if r.readable {
                    self.on_readable(token);
                }
                if r.writable && self.conns.contains_key(&token) {
                    self.flush_write(token);
                }
                if r.error && !r.readable && !r.writable && self.conns.contains_key(&token) {
                    self.close(token);
                }
            }
        }
        // Loop exited: remaining connections drop here, closing their
        // sockets. Workers exit via the closed queue; late completions
        // fail their send into the dropped receiver and are discarded.
    }

    /// The poll entry set: waker first, then (maybe) the listener, then
    /// every connection with I/O interest. Returns the token for each
    /// connection entry, in order.
    fn poll_set(&self) -> (Vec<PollEntry>, Vec<u64>, bool) {
        let mut entries = vec![PollEntry {
            fd: self.waker.fd(),
            read: true,
            write: false,
        }];
        let listener_armed = match &self.listener {
            Some(listener) if self.cooldown.is_none() => {
                entries.push(PollEntry {
                    fd: listener.as_raw_fd(),
                    read: true,
                    write: false,
                });
                true
            }
            _ => false,
        };
        let mut tokens = Vec::with_capacity(self.conns.len());
        for (&token, conn) in &self.conns {
            let entry = match conn.phase {
                Phase::Reading if !conn.reads_closed => PollEntry {
                    fd: conn.stream.as_raw_fd(),
                    read: true,
                    write: false,
                },
                Phase::Writing => PollEntry {
                    fd: conn.stream.as_raw_fd(),
                    read: false,
                    write: true,
                },
                _ => continue,
            };
            entries.push(entry);
            tokens.push(token);
        }
        (entries, tokens, listener_armed)
    }

    /// Sleep until the earliest pending deadline (connection timeout,
    /// accept cooldown, or drain bound); `None` blocks until woken.
    fn poll_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            if next.is_none_or(|cur| t < cur) {
                next = Some(t);
            }
        };
        if let Some(until) = self.cooldown {
            consider(until);
        }
        if let Some(deadline) = self.draining {
            consider(deadline);
        }
        for conn in self.conns.values() {
            if let Some(deadline) = conn.deadline {
                consider(deadline);
            }
        }
        next.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// Shutdown observed: stop accepting (closes the listener fd), drop
    /// idle connections at their request boundary — exactly the
    /// threaded backend's semantics — and bound the remaining drain.
    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now() + self.shared.config.drain_timeout);
        self.listener = None;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.phase == Phase::Reading)
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close(token);
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    /// Accepts everything pending on the listener; on accept failure,
    /// counts it and puts the listener on an exponential cooldown.
    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.on_success();
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let shed = self.shared.active_connections.load(Ordering::SeqCst)
                        >= self.shared.config.max_connections;
                    if shed {
                        // Shed in-band from this very loop: the
                        // connection state machine carries the ERR_BUSY
                        // answer, no thread is spawned.
                        self.shared.metrics.add(CTR_SHED_CONNECTIONS, 1);
                    } else {
                        self.shared
                            .active_connections
                            .fetch_add(1, Ordering::SeqCst);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let faults = self
                        .shared
                        .faults
                        .as_ref()
                        .map(|script| FaultChannel::new(Arc::clone(script)));
                    let deadline = self.shared.config.read_timeout.map(|t| Instant::now() + t);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            phase: Phase::Reading,
                            shed,
                            counted: !shed,
                            session_version: V1,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            close_after_write: false,
                            reads_closed: false,
                            deadline,
                            faults,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.shared.metrics.add(CTR_ACCEPT_ERRORS, 1);
                    self.cooldown = Some(Instant::now() + self.backoff.on_error());
                    return;
                }
            }
        }
    }

    fn on_readable(&mut self, token: u64) {
        let read_timeout = self.shared.config.read_timeout;
        let mut fatal = false;
        let mut progressed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut tmp = [0u8; 16 * 1024];
            for _ in 0..READS_PER_ROUND {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        conn.note_raw_eof();
                        progressed = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        if conn.ingest(&tmp[..n]).is_err() {
                            fatal = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            if !fatal && progressed && conn.phase == Phase::Reading && !conn.reads_closed {
                // Progress resets the stall clock (a byte-dribbling
                // client still gets dropped eventually: each extension
                // is from *now*, and silence past the timeout closes
                // the connection).
                conn.deadline = read_timeout.map(|t| Instant::now() + t);
            }
        }
        if fatal {
            self.close(token);
            return;
        }
        if !progressed {
            return;
        }
        self.try_dispatch(token);
        if let Some(conn) = self.conns.get(&token) {
            if conn.reads_closed && conn.phase == Phase::Reading {
                // Peer is gone and no further request can complete.
                self.close(token);
            }
        }
    }

    /// Checks the read buffer for one complete request and moves the
    /// connection forward: dispatch to the worker pool, answer a shed or
    /// malformed session inline, or keep waiting.
    fn try_dispatch(&mut self, token: u64) {
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.phase != Phase::Reading {
                return;
            }
            match frame_request(&conn.read_buf) {
                FrameCheck::Incomplete => Dispatch::Wait,
                FrameCheck::Malformed if conn.shed => Dispatch::Shed,
                FrameCheck::Malformed => {
                    // Run the ordinary decoder over the bad bytes to get
                    // the precise error message serve_loop would give.
                    let message = match crate::protocol::read_request(&mut conn.read_buf.as_slice())
                    {
                        Err(e) => e.to_string(),
                        Ok(_) => "malformed request framing".to_string(),
                    };
                    Dispatch::Malformed {
                        message,
                        version: conn.session_version,
                    }
                }
                FrameCheck::Complete(total) => {
                    let request: Vec<u8> = conn.read_buf.drain(..total).collect();
                    if conn.shed {
                        Dispatch::Shed
                    } else if self.shared.shutdown.load(Ordering::SeqCst) {
                        // Same boundary as serve_loop: nothing new is
                        // admitted once the flag is up.
                        Dispatch::Close
                    } else {
                        Dispatch::Run {
                            request,
                            version: conn.session_version,
                        }
                    }
                }
            }
        };
        match action {
            Dispatch::Wait => {}
            Dispatch::Close => self.close(token),
            Dispatch::Malformed { message, version } => {
                let mut reply = Vec::new();
                let _ = write_response_v(
                    &mut reply,
                    version,
                    &Response::Error {
                        code: ERR_BAD_REQUEST,
                        message,
                    },
                );
                self.stage_reply(token, reply, version, true);
            }
            Dispatch::Shed => {
                // The in-band busy answer, sent only after consuming the
                // client's request so the close is clean (closing with
                // unread inbound data would RST and eat the reply).
                let mut reply = Vec::new();
                let _ = write_response(
                    &mut reply,
                    &Response::Error {
                        code: ERR_BUSY,
                        message: SHED_CONNECTION_MSG.to_string(),
                    },
                );
                self.stage_reply(token, reply, V1, true);
            }
            Dispatch::Run { request, version } => {
                {
                    let conn = self.conns.get_mut(&token).expect("dispatching live conn");
                    conn.phase = Phase::Processing;
                    conn.deadline = None;
                }
                self.shared.inflight_requests.fetch_add(1, Ordering::SeqCst);
                let accepted = self.queue.push(Job {
                    token,
                    request,
                    version,
                    t0: Instant::now(),
                });
                if !accepted {
                    self.shared.inflight_requests.fetch_sub(1, Ordering::SeqCst);
                    self.close(token);
                }
            }
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        self.shared.inflight_requests.fetch_sub(1, Ordering::SeqCst);
        if !self.conns.contains_key(&completion.token) {
            return; // the connection died while the worker computed
        }
        if completion.reply.is_empty() {
            self.close(completion.token);
            return;
        }
        self.stage_reply(
            completion.token,
            completion.reply,
            completion.version,
            completion.close_after,
        );
    }

    /// Stages `reply` into the connection's write buffer (through the
    /// fault transport when chaos is installed) and flushes eagerly —
    /// on loopback the whole reply usually leaves in one syscall and
    /// the connection never touches `POLLOUT`.
    fn stage_reply(&mut self, token: u64, reply: Vec<u8>, version: u16, close_after: bool) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.session_version = version;
            conn.close_after_write = close_after;
            match &mut conn.faults {
                None => conn.write_buf = reply,
                Some(fc) => {
                    // Injected delays sleep the reactor thread; fine for
                    // the test-only chaos hook.
                    let res = fc
                        .transport
                        .write_all(&reply)
                        .and_then(|()| fc.transport.flush());
                    conn.write_buf = std::mem::take(&mut fc.buf.borrow_mut().outbound);
                    if res.is_err() {
                        // The fault cut the reply short: send whatever
                        // "made it onto the wire", then close — the
                        // threaded backend's serve_loop does the same.
                        conn.close_after_write = true;
                    }
                }
            }
            conn.write_pos = 0;
            conn.phase = Phase::Writing;
            conn.deadline = self.shared.config.write_timeout.map(|t| Instant::now() + t);
        }
        self.flush_write(token);
    }

    /// Drains the write buffer as far as the socket will take it.
    fn flush_write(&mut self, token: u64) {
        let write_timeout = self.shared.config.write_timeout;
        let result = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let result = loop {
                if conn.write_pos >= conn.write_buf.len() {
                    break FlushResult::Done;
                }
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break FlushResult::Broken,
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.deadline = write_timeout.map(|t| Instant::now() + t);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break FlushResult::Pending,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break FlushResult::Broken,
                }
            };
            if matches!(result, FlushResult::Done) {
                conn.write_buf.clear();
                conn.write_pos = 0;
            }
            result
        };
        match result {
            FlushResult::Pending => {}
            FlushResult::Broken => self.close(token),
            FlushResult::Done => {
                let close = {
                    let conn = self.conns.get_mut(&token).expect("flushed live conn");
                    if conn.close_after_write {
                        true
                    } else {
                        conn.phase = Phase::Reading;
                        conn.deadline = self.shared.config.read_timeout.map(|t| Instant::now() + t);
                        false
                    }
                };
                if close {
                    self.close(token);
                    return;
                }
                // A pipelining client may have buffered the next request
                // already; a half-closed one may have nothing left.
                self.try_dispatch(token);
                if let Some(conn) = self.conns.get(&token) {
                    if conn.reads_closed && conn.phase == Phase::Reading {
                        self.close(token);
                    }
                }
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.counted {
                self.shared
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            }
            // Dropping the TcpStream closes the fd (clean FIN if the
            // peer is still there).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_envelope;

    #[test]
    fn frame_check_walks_the_states() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x01, b"payload bytes").unwrap();
        // Every strict prefix is Incomplete, the whole thing Complete.
        for cut in 0..buf.len() {
            assert!(matches!(frame_request(&buf[..cut]), FrameCheck::Incomplete));
        }
        match frame_request(&buf) {
            FrameCheck::Complete(total) => assert_eq!(total, buf.len()),
            _ => panic!("a whole envelope must be Complete"),
        }
        // Trailing bytes of a next request don't confuse the framing.
        let mut two = buf.clone();
        two.extend_from_slice(&buf[..7]);
        match frame_request(&two) {
            FrameCheck::Complete(total) => assert_eq!(total, buf.len()),
            _ => panic!("first envelope still Complete"),
        }
    }

    #[test]
    fn frame_check_rejects_hopeless_headers() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, 0x01, b"x").unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(frame_request(&bad_magic), FrameCheck::Malformed));
        let mut bad_version = buf.clone();
        bad_version[4..6].copy_from_slice(&999u16.to_le_bytes());
        assert!(matches!(frame_request(&bad_version), FrameCheck::Malformed));
        let mut bad_len = buf.clone();
        bad_len[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(frame_request(&bad_len), FrameCheck::Malformed));
    }

    #[test]
    fn job_queue_delivers_then_drains_after_close() {
        let q = JobQueue::new();
        assert!(q.push(Job {
            token: 1,
            request: vec![1],
            version: 1,
            t0: Instant::now(),
        }));
        q.close();
        assert!(
            !q.push(Job {
                token: 2,
                request: vec![2],
                version: 1,
                t0: Instant::now(),
            }),
            "closed queue accepts nothing new"
        );
        assert_eq!(q.pop().expect("queued before close").token, 1);
        assert!(q.pop().is_none(), "closed and drained");
    }

    #[test]
    fn faulted_buffers_report_wouldblock_until_fed() {
        let fc = FaultChannel::new(crate::fault::FaultPlan::none().script());
        let buf = Rc::clone(&fc.buf);
        let mut t = fc.transport;
        let mut tmp = [0u8; 8];
        assert_eq!(
            t.read(&mut tmp).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        buf.borrow_mut().inbound.extend([1u8, 2, 3]);
        assert_eq!(t.read(&mut tmp).unwrap(), 3);
        assert_eq!(&tmp[..3], &[1, 2, 3]);
        buf.borrow_mut().eof = true;
        assert_eq!(t.read(&mut tmp).unwrap(), 0, "EOF after the feed stops");
    }
}
