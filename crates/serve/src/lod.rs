//! Progressive multi-resolution frame streaming (AVWF v2 LOD).
//!
//! The paper's incremental field-line scheme — "the first *n* lines are
//! always a near-optimal portrait of the field" — applied to the wire:
//! instead of blocking on a full frame, a v2 session can ask for a
//! *coarse-to-fine cut sequence* and render something after one chunk.
//! The octree store makes this nearly free: the particle file is sorted
//! by ascending leaf density, so every refinement is a contiguous suffix
//! slice of the same arrays a full fetch would send, and a partial frame
//! is *exactly* the extraction a lower threshold would have produced
//! (`accelviz_octree::extraction::align_cuts` never splits a leaf group).
//!
//! A stream is planned by [`plan_frame_chunks`] and reassembled by
//! [`ProgressiveAssembler`]:
//!
//! 1. **Coarse head** (`RECORD_COARSE`) — the frame header, the volume
//!    grid sum-pooled by [`COARSE_GRID_FACTOR`] (1/64th of the texture
//!    bytes), and the first point slice: the lowest-density leaf groups,
//!    which are precisely the halo extremes the paper's point pass
//!    exists to show. This chunk alone decodes to a renderable
//!    [`HybridFrame`].
//! 2. **Refinement deltas** (`RECORD_DELTA`) — contiguous point ranges
//!    that splice onto the resident partial frame, in store order.
//! 3. **Final tail** (`RECORD_FINAL`) — the full-resolution grid plus
//!    the length and FNV-1a 64 of the frame's *v1 encoding*. The
//!    assembler re-encodes the spliced frame and must land on those
//!    exact bytes, so any splice defect — a wrong range, a damaged
//!    block, a grid swap — fails loudly instead of rendering subtly
//!    wrong. This is the same end-to-end discipline as
//!    [`decode_frame_v2`](crate::wire::decode_frame_v2), which is why
//!    a fully-refined progressive
//!    frame is bit-identical to a full v2 fetch.
//!
//! Planning is a pure function of `(frame, chunk budget)` — no clocks,
//! no randomness — so a router that re-chunks a cached frame produces
//! byte-identical records to the shard server it fetched from, and a
//! replay after a transport failure re-produces the records the client
//! already holds (it skips them by the assembler's high-water mark).

use crate::error::{Result, ServeError};
use crate::wire::{
    coord_code, coord_from_code, encode_frame, fnv1a64, put_aabb, read_aabb, read_f64_block,
    PayloadReader, PayloadWriter, MAX_PAYLOAD,
};
use accelviz_beam::particle::Particle;
use accelviz_core::hybrid::HybridFrame;
use accelviz_octree::density::DensityGrid;
use accelviz_octree::extraction::align_cuts;
use accelviz_octree::plots::PlotType;
use accelviz_store::codec::{decode_f32s, encode_f32s, encode_f64s};
use accelviz_store::progressive::{
    decode_record, encode_record, Record, RecordAssembler, RECORD_COARSE, RECORD_DELTA,
    RECORD_FINAL,
};

/// Default refinement-chunk budget in bytes when the client asks for the
/// server default and `ACCELVIZ_LOD_BUDGET` is unset.
pub const DEFAULT_CHUNK_BYTES: u64 = 64 * 1024;
/// Smallest honored chunk budget: below this the per-record framing
/// overhead dominates the payload.
pub const MIN_CHUNK_BYTES: u64 = 1024;
/// Largest honored chunk budget (a chunk is still one envelope).
pub const MAX_CHUNK_BYTES: u64 = 64 * 1024 * 1024;
/// Sum-pooling factor for the coarse head's volume grid: each axis
/// shrinks by 4×, the texture by 64×.
pub const COARSE_GRID_FACTOR: usize = 4;
/// Wire cost of one point used to convert a byte budget into a point
/// budget: six `f64` coordinates plus the `f64` density, uncompressed.
const POINT_WIRE_BYTES: u64 = 56;

/// The chunk budget from the environment: `ACCELVIZ_LOD_BUDGET` in
/// bytes, `None` when unset or unparsable.
pub fn lod_budget_from_env() -> Option<u64> {
    std::env::var("ACCELVIZ_LOD_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// Resolves a request's `chunk_bytes` into the budget the planner uses:
/// `0` means "server default" (the `ACCELVIZ_LOD_BUDGET` environment
/// knob, else [`DEFAULT_CHUNK_BYTES`]), and everything is clamped to
/// `[MIN_CHUNK_BYTES, MAX_CHUNK_BYTES]`.
pub fn chunk_budget(requested: u64) -> u64 {
    let raw = if requested == 0 {
        lod_budget_from_env().unwrap_or(DEFAULT_CHUNK_BYTES)
    } else {
        requested
    };
    raw.clamp(MIN_CHUNK_BYTES, MAX_CHUNK_BYTES)
}

/// The run lengths of equal-density groups in the frame's sorted
/// `point_densities` — the leaf-group boundaries, recovered from the
/// frame alone (adjacent leaves with identical density merge into one
/// run, which only makes cuts coarser, never unaligned).
fn density_runs(densities: &[f64]) -> Vec<usize> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < densities.len() {
        let bits = densities[i].to_bits();
        let start = i;
        while i < densities.len() && densities[i].to_bits() == bits {
            i += 1;
        }
        runs.push(i - start);
    }
    runs
}

/// Encodes one contiguous point range `[start, start + len)` of the
/// frame: start, length, six coordinate-column codec blocks, and the
/// density block.
fn put_point_slice(w: &mut PayloadWriter, frame: &HybridFrame, start: usize, len: usize) {
    w.put_u64(start as u64);
    w.put_u64(len as u64);
    let slice = &frame.points[start..start + len];
    let mut col = vec![0.0f64; len];
    for c in 0..6 {
        for (slot, p) in col.iter_mut().zip(slice) {
            *slot = p.to_array()[c];
        }
        w.put_bytes(&encode_f64s(&col));
    }
    w.put_bytes(&encode_f64s(&frame.point_densities[start..start + len]));
}

/// Encodes a grid: dims, bounds, one `f32` codec block.
fn put_grid(w: &mut PayloadWriter, grid: &DensityGrid) {
    for d in grid.dims() {
        w.put_u64(d as u64);
    }
    put_aabb(w, grid.bounds());
    w.put_bytes(&encode_f32s(grid.data()));
}

/// Decodes a grid written by [`put_grid`] with the same count bounds as
/// the v2 frame decoder.
fn read_grid(r: &mut PayloadReader<'_>) -> Result<DensityGrid> {
    let dims = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
    let n_cells = dims[0]
        .checked_mul(dims[1])
        .and_then(|n| n.checked_mul(dims[2]))
        .ok_or_else(|| ServeError::Corrupt("grid dims overflow".into()))?;
    if dims.contains(&0) {
        return Err(ServeError::Corrupt("grid dims must be positive".into()));
    }
    if n_cells as u64 > MAX_PAYLOAD / 4 {
        return Err(ServeError::Corrupt(format!(
            "declared grid of {n_cells} cells exceeds the decoded-payload limit"
        )));
    }
    let bounds = read_aabb(r)?;
    let mut pos = 0;
    let data =
        decode_f32s(r.rest(), &mut pos, n_cells).map_err(|e| ServeError::Corrupt(e.to_string()))?;
    r.advance(pos)?;
    Ok(DensityGrid::from_raw(bounds, dims, data))
}

/// Plans the chunk sequence for `frame` under a `chunk_bytes` budget
/// (already resolved via [`chunk_budget`]). Returns the encoded records
/// in send order — always at least two (coarse head, final tail).
/// Deterministic: the same frame and budget always produce the same
/// bytes, on a shard server or on a router re-chunking its cache.
pub fn plan_frame_chunks(frame: &HybridFrame, chunk_bytes: u64) -> Vec<Vec<u8>> {
    let chunk_points = (chunk_bytes / POINT_WIRE_BYTES).max(1) as usize;
    let runs = density_runs(&frame.point_densities);
    let cuts = align_cuts(&runs, chunk_points);
    debug_assert_eq!(cuts.last().copied(), Some(frame.points.len()));

    let raw = encode_frame(frame);
    let total = (cuts.len() + 1) as u32;
    let mut records = Vec::with_capacity(total as usize);

    // Coarse head: header, downsampled grid, first point slice.
    let mut w = PayloadWriter::new();
    w.put_u64(frame.step as u64);
    for c in frame.plot.coords {
        w.put_u8(coord_code(c));
    }
    put_aabb(&mut w, &frame.bounds);
    w.put_f64(frame.threshold);
    w.put_u64(frame.discarded);
    w.put_u64(frame.points.len() as u64);
    put_grid(&mut w, &frame.grid.downsample(COARSE_GRID_FACTOR));
    put_point_slice(&mut w, frame, 0, cuts[0]);
    records.push(encode_record(&Record {
        kind: RECORD_COARSE,
        seq: 0,
        total,
        payload: w.into_bytes(),
    }));

    // Refinement deltas: the suffix slices between consecutive cuts.
    for (i, pair) in cuts.windows(2).enumerate() {
        let mut w = PayloadWriter::new();
        put_point_slice(&mut w, frame, pair[0], pair[1] - pair[0]);
        records.push(encode_record(&Record {
            kind: RECORD_DELTA,
            seq: (i + 1) as u32,
            total,
            payload: w.into_bytes(),
        }));
    }

    // Final tail: the full-resolution grid and the v1 trailer.
    let mut w = PayloadWriter::new();
    put_grid(&mut w, &frame.grid);
    w.put_u64(raw.len() as u64);
    w.put_u64(fnv1a64(&raw));
    records.push(encode_record(&Record {
        kind: RECORD_FINAL,
        seq: total - 1,
        total,
        payload: w.into_bytes(),
    }));
    records
}

/// The fixed header fields carried by the coarse head.
struct PartialHeader {
    step: usize,
    plot: PlotType,
    bounds: accelviz_math::Aabb,
    threshold: f64,
    discarded: u64,
}

/// Reassembles a progressive stream into a [`HybridFrame`], exposing a
/// renderable partial frame after every accepted record.
///
/// Feed each received record to [`accept`]; after the coarse head,
/// [`partial_frame`] yields the current "render what you have" state
/// (coarse grid + points so far). When [`accept`] returns `true` the
/// stream is complete and verified — [`into_frame`] is the
/// bit-identical equal of a full v2 fetch. On a replay after transport
/// failure, skip records whose seq is below [`next_seq`].
///
/// [`accept`]: ProgressiveAssembler::accept
/// [`partial_frame`]: ProgressiveAssembler::partial_frame
/// [`into_frame`]: ProgressiveAssembler::into_frame
/// [`next_seq`]: ProgressiveAssembler::next_seq
pub struct ProgressiveAssembler {
    records: RecordAssembler,
    header: Option<PartialHeader>,
    total_points: usize,
    points: Vec<Particle>,
    point_densities: Vec<f64>,
    coarse_grid: Option<DensityGrid>,
    final_frame: Option<HybridFrame>,
}

impl Default for ProgressiveAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressiveAssembler {
    /// An assembler expecting the coarse head.
    pub fn new() -> ProgressiveAssembler {
        ProgressiveAssembler {
            records: RecordAssembler::new(),
            header: None,
            total_points: 0,
            points: Vec::new(),
            point_densities: Vec::new(),
            coarse_grid: None,
            final_frame: None,
        }
    }

    /// The seq this assembler will apply next — the replay high-water
    /// mark.
    pub fn next_seq(&self) -> u32 {
        self.records.next_seq()
    }

    /// Whether the final record has been accepted and verified.
    pub fn is_complete(&self) -> bool {
        self.final_frame.is_some()
    }

    /// Points spliced in so far (of [`total_points`]).
    ///
    /// [`total_points`]: ProgressiveAssembler::total_points
    pub fn points_resident(&self) -> usize {
        self.points.len()
    }

    /// Points the complete frame will hold (0 before the coarse head).
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// Validates and applies one encoded record. Returns `true` when the
    /// stream completed (and the reassembled frame verified against the
    /// v1 trailer).
    pub fn accept(&mut self, record_bytes: &[u8]) -> Result<bool> {
        let rec = decode_record(record_bytes).map_err(|e| ServeError::Corrupt(e.to_string()))?;
        self.records
            .accept(&rec)
            .map_err(|e| ServeError::Corrupt(e.to_string()))?;
        let mut r = PayloadReader::new(&rec.payload);
        match rec.kind {
            RECORD_COARSE => {
                let step = r.u64()? as usize;
                let plot = PlotType {
                    coords: [
                        coord_from_code(r.u8()?)?,
                        coord_from_code(r.u8()?)?,
                        coord_from_code(r.u8()?)?,
                    ],
                };
                let bounds = read_aabb(&mut r)?;
                let threshold = r.f64()?;
                let discarded = r.u64()?;
                let n_points = r.u64()?;
                if n_points > MAX_PAYLOAD / 48 {
                    return Err(ServeError::Corrupt(format!(
                        "declared point count {n_points} exceeds the decoded-payload limit"
                    )));
                }
                self.header = Some(PartialHeader {
                    step,
                    plot,
                    bounds,
                    threshold,
                    discarded,
                });
                self.total_points = n_points as usize;
                self.coarse_grid = Some(read_grid(&mut r)?);
                self.apply_slice(&mut r)?;
            }
            RECORD_DELTA => {
                self.apply_slice(&mut r)?;
            }
            RECORD_FINAL => {
                if self.points.len() != self.total_points {
                    return Err(ServeError::Corrupt(format!(
                        "final record with {} of {} points resident",
                        self.points.len(),
                        self.total_points
                    )));
                }
                let grid = read_grid(&mut r)?;
                let raw_len = r.u64()?;
                let raw_fnv = r.u64()?;
                let header = self
                    .header
                    .take()
                    .ok_or_else(|| ServeError::Corrupt("final record before header".into()))?;
                let frame = HybridFrame {
                    step: header.step,
                    plot: header.plot,
                    bounds: header.bounds,
                    points: std::mem::take(&mut self.points),
                    point_densities: std::mem::take(&mut self.point_densities),
                    grid,
                    threshold: header.threshold,
                    discarded: header.discarded,
                };
                // The splice-correctness proof: the reassembled frame's
                // v1 encoding must be the exact bytes the planner hashed.
                let reencoded = encode_frame(&frame);
                if reencoded.len() as u64 != raw_len || fnv1a64(&reencoded) != raw_fnv {
                    return Err(ServeError::Corrupt(format!(
                        "reassembled frame re-encodes to {} bytes (fnv {:#018x}), trailer \
                         promised {raw_len} (fnv {raw_fnv:#018x})",
                        reencoded.len(),
                        fnv1a64(&reencoded)
                    )));
                }
                self.final_frame = Some(frame);
            }
            _ => unreachable!("RecordAssembler admits only known kinds"),
        }
        r.finish()?;
        Ok(self.is_complete())
    }

    /// Splices one point range; the range must start exactly where the
    /// resident points end (contiguity is what makes replay and splice
    /// order provable).
    fn apply_slice(&mut self, r: &mut PayloadReader<'_>) -> Result<()> {
        let start = r.u64()? as usize;
        let len = r.u64()? as usize;
        if start != self.points.len() {
            return Err(ServeError::Corrupt(format!(
                "point range starts at {start}, resident frame ends at {}",
                self.points.len()
            )));
        }
        if start + len > self.total_points {
            return Err(ServeError::Corrupt(format!(
                "point range [{start}, {}) exceeds the declared {} points",
                start + len,
                self.total_points
            )));
        }
        let mut cols = Vec::with_capacity(6);
        for _ in 0..6 {
            cols.push(read_f64_block(r, len)?);
        }
        self.points.extend((0..len).map(|i| {
            Particle::from_array([
                cols[0][i], cols[1][i], cols[2][i], cols[3][i], cols[4][i], cols[5][i],
            ])
        }));
        self.point_densities.extend(read_f64_block(r, len)?);
        Ok(())
    }

    /// The current renderable partial frame: the header, the coarse
    /// grid, and every point spliced so far. `None` before the coarse
    /// head arrives; after completion it is the final frame itself.
    pub fn partial_frame(&self) -> Option<HybridFrame> {
        if let Some(frame) = &self.final_frame {
            return Some(frame.clone());
        }
        let header = self.header.as_ref()?;
        let grid = self.coarse_grid.as_ref()?;
        Some(HybridFrame {
            step: header.step,
            plot: header.plot,
            bounds: header.bounds,
            points: self.points.clone(),
            point_densities: self.point_densities.clone(),
            grid: grid.clone(),
            threshold: header.threshold,
            discarded: header.discarded,
        })
    }

    /// The verified final frame, consuming the assembler. `None` until
    /// [`accept`](ProgressiveAssembler::accept) returned `true`.
    pub fn into_frame(self) -> Option<HybridFrame> {
        self.final_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_frame_v2;
    use accelviz_math::{Aabb, Vec3};

    fn sample_frame(n_points: usize, dims: [usize; 3]) -> HybridFrame {
        let bounds = Aabb {
            min: Vec3::new(-1.0, -2.0, -3.0),
            max: Vec3::new(1.0, 2.0, 3.0),
        };
        let points: Vec<Particle> = (0..n_points)
            .map(|i| {
                let t = i as f64 * 0.37;
                Particle::from_array([t.sin(), t.cos() * 1e-3, -t.sin(), t * 1e-4, t, -t])
            })
            .collect();
        // Sorted leaf-style densities: runs of equal values, ascending.
        let point_densities: Vec<f64> = (0..n_points).map(|i| 1.0 + (i / 7) as f64).collect();
        let n = dims[0] * dims[1] * dims[2];
        let mut cells = vec![0.0f32; n];
        for (i, c) in cells.iter_mut().enumerate().step_by(17) {
            *c = (i % 40) as f32;
        }
        HybridFrame {
            step: 11,
            plot: PlotType::X_PX_Y,
            bounds,
            points,
            point_densities,
            grid: DensityGrid::from_raw(bounds, dims, cells),
            threshold: 2.5,
            discarded: 940,
        }
    }

    fn assemble(records: &[Vec<u8>]) -> ProgressiveAssembler {
        let mut asm = ProgressiveAssembler::new();
        for (i, rec) in records.iter().enumerate() {
            let done = asm.accept(rec).unwrap();
            assert_eq!(done, i == records.len() - 1);
        }
        asm
    }

    #[test]
    fn streams_reassemble_bit_identically_at_every_budget() {
        let frame = sample_frame(500, [16, 16, 16]);
        for budget in [MIN_CHUNK_BYTES, 4096, DEFAULT_CHUNK_BYTES, MAX_CHUNK_BYTES] {
            let records = plan_frame_chunks(&frame, budget);
            assert!(records.len() >= 2, "budget {budget}");
            let asm = assemble(&records);
            assert_eq!(asm.into_frame().unwrap(), frame, "budget {budget}");
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let frame = sample_frame(300, [8, 8, 8]);
        assert_eq!(
            plan_frame_chunks(&frame, 4096),
            plan_frame_chunks(&frame, 4096)
        );
    }

    #[test]
    fn the_coarse_head_is_renderable_and_small() {
        let frame = sample_frame(2_000, [32, 32, 32]);
        let records = plan_frame_chunks(&frame, 4096);
        assert!(records.len() > 3, "small budget must produce many chunks");
        let mut asm = ProgressiveAssembler::new();
        assert!(asm.partial_frame().is_none(), "nothing to render yet");
        asm.accept(&records[0]).unwrap();
        let partial = asm.partial_frame().unwrap();
        // Renderable: header intact, points present, coarse grid carries
        // the full mass at 1/64th the texture bytes.
        assert_eq!(partial.step, frame.step);
        assert!(!partial.points.is_empty());
        assert!(partial.points.len() < frame.points.len());
        assert_eq!(partial.grid.total(), frame.grid.total());
        assert_eq!(partial.grid.dims(), [8, 8, 8]);
        assert_eq!(&frame.points[..partial.points.len()], &partial.points[..]);
        // And cheap: the head undercuts the full v2 payload.
        let (full_v2, _) = encode_frame_v2(&frame);
        assert!(records[0].len() * 2 < full_v2.len());
    }

    #[test]
    fn partial_frames_grow_monotonically_and_end_at_the_final_frame() {
        let frame = sample_frame(700, [16, 16, 16]);
        let records = plan_frame_chunks(&frame, 2048);
        let mut asm = ProgressiveAssembler::new();
        let mut last = 0usize;
        for rec in &records {
            asm.accept(rec).unwrap();
            let partial = asm.partial_frame().unwrap();
            assert!(partial.points.len() >= last);
            assert_eq!(&frame.points[..partial.points.len()], &partial.points[..]);
            last = partial.points.len();
        }
        assert_eq!(asm.partial_frame().unwrap(), frame);
    }

    #[test]
    fn reordered_and_duplicated_records_are_rejected() {
        let frame = sample_frame(400, [8, 8, 8]);
        let records = plan_frame_chunks(&frame, 1024);
        assert!(records.len() >= 4);
        let mut asm = ProgressiveAssembler::new();
        assert!(asm.accept(&records[1]).is_err(), "starting mid-stream");
        let mut asm = ProgressiveAssembler::new();
        asm.accept(&records[0]).unwrap();
        assert!(asm.accept(&records[0]).is_err(), "duplicate head");
        assert!(asm.accept(&records[2]).is_err(), "gap");
    }

    #[test]
    fn damaged_records_never_complete_a_stream() {
        let frame = sample_frame(300, [8, 8, 8]);
        let records = plan_frame_chunks(&frame, 2048);
        for (i, rec) in records.iter().enumerate() {
            for at in [0, rec.len() / 2, rec.len() - 1] {
                let mut bad = rec.clone();
                bad[at] ^= 0x20;
                let mut asm = ProgressiveAssembler::new();
                for good in &records[..i] {
                    asm.accept(good).unwrap();
                }
                assert!(asm.accept(&bad).is_err(), "record {i} flipped at {at}");
            }
        }
    }

    #[test]
    fn a_forged_final_grid_fails_the_trailer_check() {
        // Splice correctness end-to-end: swap the final record of one
        // frame into another frame's stream. Records themselves are
        // valid, and the difference (one point) is resident *before* the
        // final record arrives — the v1 trailer must catch the mismatch
        // between the promised frame and the spliced one.
        let a = sample_frame(210, [8, 8, 8]);
        let mut b = sample_frame(210, [8, 8, 8]);
        b.points[0] = Particle::from_array([9.0, 9.0, 9.0, 9.0, 9.0, 9.0]);
        let ra = plan_frame_chunks(&a, 2048);
        let rb = plan_frame_chunks(&b, 2048);
        assert_eq!(ra.len(), rb.len());
        let mut asm = ProgressiveAssembler::new();
        for rec in &ra[..ra.len() - 1] {
            asm.accept(rec).unwrap();
        }
        let err = asm.accept(&rb[rb.len() - 1]).unwrap_err();
        assert!(err.to_string().contains("trailer promised"), "{err}");
    }

    #[test]
    fn empty_frames_stream_as_head_plus_tail() {
        let mut frame = sample_frame(0, [1, 1, 1]);
        frame.grid = DensityGrid::from_raw(frame.bounds, [1, 1, 1], vec![0.0]);
        let records = plan_frame_chunks(&frame, DEFAULT_CHUNK_BYTES);
        assert_eq!(records.len(), 2);
        let asm = assemble(&records);
        assert_eq!(asm.into_frame().unwrap(), frame);
    }

    #[test]
    fn chunk_budget_resolves_defaults_and_clamps() {
        assert_eq!(chunk_budget(4096), 4096);
        assert_eq!(chunk_budget(1), MIN_CHUNK_BYTES);
        assert_eq!(chunk_budget(u64::MAX), MAX_CHUNK_BYTES);
        // 0 falls back to the default (the env knob is exercised in the
        // e2e suite, where the process environment is controlled).
        if lod_budget_from_env().is_none() {
            assert_eq!(chunk_budget(0), DEFAULT_CHUNK_BYTES);
        }
    }
}
