//! The multi-client frame server.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread running a strict request/reply loop. All handlers share one
//! [`ExtractionCache`] and one per-server metrics
//! [`Registry`] (counters under the `serve.*` names in [`crate::stats`]).
//! The server owns the *partitioned* data — the
//! density-sorted stores produced by preprocessing — and extracts hybrid
//! frames on demand at whatever threshold a client dials, which is
//! exactly the paper's split: preprocessing near the simulation, compact
//! hybrid frames shipped to the desktop.
//!
//! Protection: the server sheds rather than degrades. Past
//! [`ServerConfig::max_connections`] a new connection gets one in-band
//! `ERR_BUSY` (with a retry-after hint) and is closed; past
//! [`ServerConfig::max_inflight_extractions`] a frame request that would
//! start a *new* extraction gets `ERR_BUSY` on its live connection
//! (cached and coalescing requests are always admitted — they are
//! cheap). A panicking request handler is isolated: the client gets
//! `ERR_INTERNAL`, the connection and the listener survive. Shutdown
//! drains in-flight replies before returning, bounded by
//! [`ServerConfig::drain_timeout`].

use crate::cache::{CacheKey, ExtractionCache, Probe};
use crate::error::ServeError;
use crate::fault::{FaultScript, FaultyTransport};
use crate::protocol::{
    write_response, write_response_v, FrameInfo, Request, Response, ERR_BAD_REQUEST,
    ERR_BAD_THRESHOLD, ERR_BUSY, ERR_INTERNAL, ERR_NO_SUCH_FRAME, RESP_FRAME,
};
use crate::stats::{
    ServerStats, CTR_BYTES_SENT, CTR_CACHE_HITS, CTR_CACHE_MISSES, CTR_FRAMES_SERVED,
    CTR_FRAME_BYTES_RAW, CTR_FRAME_BYTES_WIRE, CTR_HANDLER_PANICS, CTR_REQUESTS,
    CTR_SHED_CONNECTIONS, CTR_SHED_EXTRACTIONS, HIST_LATENCY,
};
use crate::wire::{encode_frame, encode_frame_v2, write_envelope_v, V1, V2, VERSION};
use accelviz_core::hybrid::HybridFrame;
use accelviz_octree::extraction::{threshold_for_budget, threshold_for_budget_tree};
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_store::ResidentRun;
use accelviz_trace::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Extractions the shared cache holds.
    pub cache_capacity: usize,
    /// Resolution of the density volume in served frames.
    pub volume_dims: [usize; 3],
    /// Point budget behind the catalog's suggested threshold.
    pub point_budget: usize,
    /// How long a worker blocks reading a request before the connection
    /// is dropped; `None` waits forever. Without a bound, a client that
    /// connects and goes silent (or dribbles bytes) pins its
    /// thread-per-connection worker indefinitely.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes (a client that stops draining its socket).
    pub write_timeout: Option<Duration>,
    /// Connections served concurrently; past this, new arrivals get one
    /// in-band `ERR_BUSY` and are closed (thread-per-connection must not
    /// become thread-per-attacker).
    pub max_connections: usize,
    /// Frame requests allowed to start *new* extractions concurrently;
    /// past this they are shed with `ERR_BUSY` on their live connection.
    /// Cached and coalescing requests are always admitted.
    pub max_inflight_extractions: usize,
    /// How long shutdown waits for in-flight replies to finish.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_capacity: 8,
            volume_dims: [16, 16, 16],
            point_budget: 1_000,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 64,
            max_inflight_extractions: 8,
            drain_timeout: Duration::from_secs(1),
        }
    }
}

/// Where the server's frames live: fully resident in memory (the
/// original topology — every partitioned store loaded up front), or
/// backed by an on-disk run whose particle data pages in and out under
/// [`ResidentRun`]'s byte budget. The request handlers are written
/// against this enum, so an out-of-core server speaks the identical
/// protocol and serves bit-identical frames.
enum Backend {
    /// Every frame's partitioned store held in memory.
    Resident(Vec<PartitionedData>),
    /// Frames fetched on demand from an `accelviz-store` run file.
    Stored(Arc<ResidentRun>),
}

impl Backend {
    fn frame_count(&self) -> usize {
        match self {
            Backend::Resident(data) => data.len(),
            Backend::Stored(run) => run.frame_count(),
        }
    }

    /// The frame catalog. The stored backend answers from directory
    /// metadata and the always-resident octrees — no particle I/O.
    fn frame_infos(&self, point_budget: usize) -> Vec<FrameInfo> {
        match self {
            Backend::Resident(data) => data
                .iter()
                .enumerate()
                .map(|(i, d)| FrameInfo {
                    frame: i as u32,
                    step: i as u64,
                    particles: d.particles().len() as u64,
                    default_threshold: threshold_for_budget(d, point_budget),
                })
                .collect(),
            Backend::Stored(run) => (0..run.frame_count())
                .map(|i| FrameInfo {
                    frame: i as u32,
                    step: i as u64,
                    particles: run.particle_count(i),
                    default_threshold: threshold_for_budget_tree(&run.tree(i).0, point_budget),
                })
                .collect(),
        }
    }
}

struct Shared {
    backend: Backend,
    config: ServerConfig,
    cache: ExtractionCache,
    metrics: Registry,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    inflight_requests: AtomicUsize,
    building_extractions: AtomicUsize,
    /// Server-side chaos hook: when set, every accepted connection is
    /// wrapped in a [`FaultyTransport`] drawing from this script.
    /// Production servers leave it `None` and pay nothing.
    faults: Option<Arc<FaultScript>>,
}

/// Decrements a shared gauge on drop, panic or not.
struct CountGuard<'a>(&'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running frame server. Dropping it (or calling
/// [`FrameServer::shutdown`]) stops the accept loop, then drains
/// in-flight replies (bounded by [`ServerConfig::drain_timeout`]);
/// handler threads end when their clients disconnect.
pub struct FrameServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Binds a loopback server on an OS-assigned port — the test and
    /// example topology. The partitioned stores are served in index
    /// order; frame `i`'s step is `i`.
    pub fn spawn_loopback(
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn("127.0.0.1:0", data, config)
    }

    /// Binds `addr` and starts accepting clients.
    pub fn spawn(
        addr: &str,
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner(addr, Backend::Resident(data), config, None)
    }

    /// Binds a loopback server over an out-of-core run: frames come from
    /// `run`'s disk file and only [`ResidentRun`]'s budget worth of
    /// particle data is ever in memory.
    pub fn spawn_stored_loopback(
        run: Arc<ResidentRun>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_stored("127.0.0.1:0", run, config)
    }

    /// Binds `addr` over an out-of-core run backend.
    pub fn spawn_stored(
        addr: &str,
        run: Arc<ResidentRun>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner(addr, Backend::Stored(run), config, None)
    }

    /// A loopback server whose every connection is faulted by `script` —
    /// the server-side chaos hook. Only tests call this; [`spawn`] never
    /// wraps streams.
    ///
    /// [`spawn`]: FrameServer::spawn
    pub fn spawn_chaos(
        data: Vec<PartitionedData>,
        config: ServerConfig,
        script: Arc<FaultScript>,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner("127.0.0.1:0", Backend::Resident(data), config, Some(script))
    }

    fn spawn_inner(
        addr: &str,
        backend: Backend,
        config: ServerConfig,
        faults: Option<Arc<FaultScript>>,
    ) -> io::Result<FrameServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            config,
            cache: ExtractionCache::new(config.cache_capacity),
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
            building_extractions: AtomicUsize::new(0),
            faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Connection cap: shed with one in-band ERR_BUSY rather
                // than spawning an unbounded handler thread.
                if accept_shared.active_connections.load(Ordering::SeqCst)
                    >= accept_shared.config.max_connections
                {
                    accept_shared.metrics.add(CTR_SHED_CONNECTIONS, 1);
                    let read_timeout = accept_shared.config.read_timeout;
                    let write_timeout = accept_shared.config.write_timeout;
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        let _ = stream.set_read_timeout(read_timeout);
                        let _ = stream.set_write_timeout(write_timeout);
                        // Consume the client's first request (its Hello)
                        // so the close after the reply is clean — closing
                        // with unread inbound data would RST the socket
                        // and the client would never see the reply.
                        let _ = crate::protocol::read_request(&mut stream);
                        let _ = write_response(
                            &mut stream,
                            &Response::Error {
                                code: ERR_BUSY,
                                message: "server at connection capacity; retry after ~100 ms"
                                    .to_string(),
                            },
                        );
                    });
                    continue;
                }
                accept_shared
                    .active_connections
                    .fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    let _guard = CountGuard(&conn_shared.active_connections);
                    handle_connection(&conn_shared, stream);
                });
            }
        });
        Ok(FrameServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A local snapshot of the statistics (the same data a client gets
    /// from [`Request::Stats`]).
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_registry(&self.shared.metrics)
    }

    /// This server's private metrics registry — the source the wire
    /// `Stats` snapshot is assembled from. Exposed so tests (and embedding
    /// applications) can assert on individual counters.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Stops accepting connections, joins the accept thread, and drains
    /// in-flight replies (bounded by [`ServerConfig::drain_timeout`]).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
            // Graceful drain: let replies already being computed or
            // written reach their clients before the process moves on.
            let deadline = Instant::now() + self.shared.config.drain_timeout;
            while self.shared.inflight_requests.load(Ordering::SeqCst) > 0
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A stalled or byte-dribbling client must not pin this worker forever:
    // a timed-out read/write surfaces as an Io error below and the
    // connection is dropped.
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    match &shared.faults {
        Some(script) => serve_loop(shared, FaultyTransport::new(stream, Arc::clone(script))),
        None => serve_loop(shared, stream),
    }
}

fn serve_loop<S: Read + Write>(shared: &Shared, mut stream: S) {
    // Until a `Hello` negotiates otherwise, the session speaks v1: a
    // pre-v2 client that skips the handshake gets exactly the byte
    // stream it always did.
    let mut session_version = V1;
    loop {
        let req = match crate::protocol::read_request(&mut stream) {
            Ok(req) => req,
            // A clean disconnect shows up as EOF at an envelope boundary.
            Err(ServeError::Truncated { got: 0, .. }) | Err(ServeError::Io(_)) => return,
            Err(e) => {
                // Malformed framing: answer in-band, then drop the
                // connection — stream sync is gone.
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = write_response_v(&mut stream, session_version, &reply);
                return;
            }
        };
        // Graceful shutdown: requests already being processed drain to
        // their replies, but nothing *new* is admitted once the flag is
        // up — the connection is dropped at the request boundary.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let t0 = Instant::now();
        let span = accelviz_trace::span("serve.request");
        let _inflight = CountGuard({
            shared.inflight_requests.fetch_add(1, Ordering::SeqCst);
            &shared.inflight_requests
        });
        // Panic isolation: a poisoned request must not take the
        // connection (let alone the listener) down with it. The client
        // gets ERR_INTERNAL and the request/reply loop continues.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond(shared, req, &mut stream, &mut session_version)
        }));
        let (bytes, served_frame) = match outcome {
            Ok(Ok(r)) => r,
            Ok(Err(_)) => return, // client went away mid-reply
            Err(_panic) => {
                shared.metrics.add(CTR_HANDLER_PANICS, 1);
                let reply = Response::Error {
                    code: ERR_INTERNAL,
                    message: "internal error serving this request; the connection survives"
                        .to_string(),
                };
                match write_response_v(&mut stream, session_version, &reply) {
                    Ok(bytes) => (bytes, false),
                    Err(_) => return,
                }
            }
        };
        drop(span);
        shared.metrics.add(CTR_REQUESTS, 1);
        shared.metrics.add(CTR_BYTES_SENT, bytes);
        if served_frame {
            shared.metrics.add(CTR_FRAMES_SERVED, 1);
        }
        shared
            .metrics
            .record_seconds(HIST_LATENCY, t0.elapsed().as_secs_f64());
    }
}

/// Tries to take one extraction permit; `None` means the limit is
/// reached and the request should be shed.
fn try_extraction_permit(shared: &Shared) -> Option<CountGuard<'_>> {
    let limit = shared.config.max_inflight_extractions;
    let gauge = &shared.building_extractions;
    let mut current = gauge.load(Ordering::SeqCst);
    loop {
        if current >= limit {
            return None;
        }
        match gauge.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return Some(CountGuard(gauge)),
            Err(actual) => current = actual,
        }
    }
}

/// Serves one request; returns (wire bytes written, was a frame reply).
/// `session_version` is the connection's negotiated protocol version —
/// `Hello` updates it, every reply is framed with it.
fn respond<S: Write>(
    shared: &Shared,
    req: Request,
    stream: &mut S,
    session_version: &mut u16,
) -> crate::error::Result<(u64, bool)> {
    match req {
        Request::Hello { version } => {
            let reply = if version == 0 {
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!("protocol version must be at least 1, client sent {version}"),
                }
            } else {
                // Speak the older of the two sides: a v1 client keeps its
                // byte-identical session, a v2 (or future) client gets
                // the newest encoding this build knows.
                let negotiated = version.min(VERSION);
                *session_version = negotiated;
                Response::HelloAck {
                    version: negotiated,
                    frame_count: shared.backend.frame_count() as u32,
                }
            };
            Ok((write_response_v(stream, *session_version, &reply)?, false))
        }
        Request::ListFrames => {
            let frames = shared.backend.frame_infos(shared.config.point_budget);
            Ok((
                write_response_v(stream, *session_version, &Response::FrameList(frames))?,
                false,
            ))
        }
        Request::RequestFrame { frame, threshold } => {
            if threshold.is_nan() {
                // NaN has no place in the density order: extraction's
                // partition_point would silently return an empty prefix,
                // and the many NaN bit patterns would each occupy their
                // own cache slot. Reject in-band. (±Inf stay valid dials:
                // +Inf is the catalog's own "serve everything" sentinel,
                // -Inf is an empty extraction.)
                let reply = Response::Error {
                    code: ERR_BAD_THRESHOLD,
                    message: format!("threshold must not be NaN, got {threshold}"),
                };
                return Ok((write_response_v(stream, *session_version, &reply)?, false));
            }
            if frame as usize >= shared.backend.frame_count() {
                let reply = Response::Error {
                    code: ERR_NO_SUCH_FRAME,
                    message: format!(
                        "frame {frame} requested, {} available",
                        shared.backend.frame_count()
                    ),
                };
                return Ok((write_response_v(stream, *session_version, &reply)?, false));
            }
            let key = CacheKey::new(frame, threshold);
            // Load shedding at the extraction limit: only requests that
            // would start a *new* extraction are shed — cached frames and
            // coalescing waiters are cheap and always admitted. The probe
            // is advisory (the entry may change before get_or_build), so
            // the limit is a strong bound, not a hard invariant.
            let probe = shared.cache.probe(&key);
            let _permit = match probe {
                Probe::Vacant => match try_extraction_permit(shared) {
                    Some(p) => Some(p),
                    None => {
                        shared.metrics.add(CTR_SHED_EXTRACTIONS, 1);
                        let reply = Response::Error {
                            code: ERR_BUSY,
                            message: "extraction capacity reached; retry after ~100 ms".to_string(),
                        };
                        return Ok((write_response_v(stream, *session_version, &reply)?, false));
                    }
                },
                Probe::Ready | Probe::Building => None,
            };
            // The stored backend pages the frame's particles in *before*
            // committing to build, so a disk failure is an in-band
            // ERR_INTERNAL instead of a panic. A Ready probe skips the
            // fetch — serving a cached extraction must not churn the
            // residency window.
            let part: Option<Arc<PartitionedData>> = match &shared.backend {
                Backend::Stored(run) if probe != Probe::Ready => match run.fetch(frame as usize) {
                    Ok(fetch) => Some(fetch.data),
                    Err(e) => {
                        let reply = Response::Error {
                            code: ERR_INTERNAL,
                            message: format!("run store failed loading frame {frame}: {e}"),
                        };
                        return Ok((write_response_v(stream, *session_version, &reply)?, false));
                    }
                },
                _ => None,
            };
            let (extracted, hit) = {
                let mut span = accelviz_trace::span("serve.extract");
                span.arg("frame", frame as f64);
                span.arg("threshold", threshold);
                let (extracted, hit) = shared
                    .cache
                    .get_or_build(CacheKey::new(frame, threshold), || {
                        build_frame(shared, part.as_deref(), frame as usize, threshold)
                    });
                span.arg("cache_hit", hit as u64 as f64);
                (extracted, hit)
            };
            shared.metrics.add(
                if hit {
                    CTR_CACHE_HITS
                } else {
                    CTR_CACHE_MISSES
                },
                1,
            );
            // Encode straight from the cached Arc — no frame clone. The
            // session version picks the payload encoding; both are
            // counted so the stats expose the live compression ratio.
            let bytes = {
                let mut span = accelviz_trace::span("serve.send");
                let (payload, raw_len) = if *session_version >= V2 {
                    encode_frame_v2(&extracted)
                } else {
                    let payload = encode_frame(&extracted);
                    let raw_len = payload.len() as u64;
                    (payload, raw_len)
                };
                shared.metrics.add(CTR_FRAME_BYTES_RAW, raw_len);
                shared
                    .metrics
                    .add(CTR_FRAME_BYTES_WIRE, payload.len() as u64);
                let bytes = write_envelope_v(stream, *session_version, RESP_FRAME, &payload)?;
                span.arg("bytes", bytes as f64);
                bytes
            };
            Ok((bytes, true))
        }
        Request::Stats => {
            let snapshot = ServerStats::from_registry(&shared.metrics);
            Ok((
                write_response_v(stream, *session_version, &Response::Stats(snapshot))?,
                false,
            ))
        }
    }
}

/// Builds one frame for the extraction cache. `part` is the paged-in
/// partition for the stored backend (`None` for the resident backend, or
/// in the rare race where a Ready probe was evicted before the build —
/// then the fetch reruns here, and a disk failure panics into the
/// handler's isolation instead of silently serving nothing).
fn build_frame(
    shared: &Shared,
    part: Option<&PartitionedData>,
    frame: usize,
    threshold: f64,
) -> HybridFrame {
    let dims = shared.config.volume_dims;
    match (&shared.backend, part) {
        (Backend::Resident(data), _) => {
            HybridFrame::from_partition(&data[frame], frame, threshold, dims)
        }
        (Backend::Stored(_), Some(p)) => HybridFrame::from_partition(p, frame, threshold, dims),
        (Backend::Stored(run), None) => {
            let fetch = run
                .fetch(frame)
                .unwrap_or_else(|e| panic!("run store failed loading frame {frame}: {e}"));
            HybridFrame::from_partition(&fetch.data, frame, threshold, dims)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn stores(n: usize) -> Vec<PartitionedData> {
        (0..n)
            .map(|i| {
                let ps = Distribution::default_beam().sample(800, i as u64 + 1);
                partition(&ps, PlotType::XYZ, BuildParams::default())
            })
            .collect()
    }

    #[test]
    fn server_binds_an_ephemeral_loopback_port() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        assert!(server.addr().port() != 0);
        assert!(server.addr().ip().is_loopback());
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_under_drop() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        drop(server); // Drop runs stop() after an explicit-path exercise elsewhere
    }

    #[test]
    fn extraction_permits_are_bounded_and_returned() {
        let config = ServerConfig {
            max_inflight_extractions: 2,
            ..ServerConfig::default()
        };
        let shared = Shared {
            backend: Backend::Resident(Vec::new()),
            config,
            cache: ExtractionCache::new(2),
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
            building_extractions: AtomicUsize::new(0),
            faults: None,
        };
        let a = try_extraction_permit(&shared);
        let b = try_extraction_permit(&shared);
        assert!(a.is_some() && b.is_some());
        assert!(try_extraction_permit(&shared).is_none(), "limit is 2");
        drop(a);
        assert!(
            try_extraction_permit(&shared).is_some(),
            "a dropped permit frees a slot"
        );
    }
}
