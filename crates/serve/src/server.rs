//! The multi-client frame server.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread running a strict request/reply loop. All handlers share one
//! [`ExtractionCache`] and one per-server metrics
//! [`Registry`] (counters under the `serve.*` names in [`crate::stats`]).
//! The server owns the *partitioned* data — the
//! density-sorted stores produced by preprocessing — and extracts hybrid
//! frames on demand at whatever threshold a client dials, which is
//! exactly the paper's split: preprocessing near the simulation, compact
//! hybrid frames shipped to the desktop.

use crate::cache::{CacheKey, ExtractionCache};
use crate::error::ServeError;
use crate::protocol::{
    write_response, FrameInfo, Request, Response, ERR_BAD_REQUEST, ERR_BAD_THRESHOLD,
    ERR_NO_SUCH_FRAME, RESP_FRAME,
};
use crate::stats::{
    ServerStats, CTR_BYTES_SENT, CTR_CACHE_HITS, CTR_CACHE_MISSES, CTR_FRAMES_SERVED, CTR_REQUESTS,
    HIST_LATENCY,
};
use crate::wire::{encode_frame, write_envelope, VERSION};
use accelviz_core::hybrid::HybridFrame;
use accelviz_octree::extraction::threshold_for_budget;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_trace::registry::Registry;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Extractions the shared cache holds.
    pub cache_capacity: usize,
    /// Resolution of the density volume in served frames.
    pub volume_dims: [usize; 3],
    /// Point budget behind the catalog's suggested threshold.
    pub point_budget: usize,
    /// How long a worker blocks reading a request before the connection
    /// is dropped; `None` waits forever. Without a bound, a client that
    /// connects and goes silent (or dribbles bytes) pins its
    /// thread-per-connection worker indefinitely.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes (a client that stops draining its socket).
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_capacity: 8,
            volume_dims: [16, 16, 16],
            point_budget: 1_000,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

struct Shared {
    data: Vec<PartitionedData>,
    config: ServerConfig,
    cache: ExtractionCache,
    metrics: Registry,
    shutdown: AtomicBool,
}

/// A running frame server. Dropping it (or calling
/// [`FrameServer::shutdown`]) stops the accept loop; handler threads end
/// when their clients disconnect.
pub struct FrameServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Binds a loopback server on an OS-assigned port — the test and
    /// example topology. The partitioned stores are served in index
    /// order; frame `i`'s step is `i`.
    pub fn spawn_loopback(
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn("127.0.0.1:0", data, config)
    }

    /// Binds `addr` and starts accepting clients.
    pub fn spawn(
        addr: &str,
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            data,
            config,
            cache: ExtractionCache::new(config.cache_capacity),
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || handle_connection(conn_shared, stream));
            }
        });
        Ok(FrameServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A local snapshot of the statistics (the same data a client gets
    /// from [`Request::Stats`]).
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_registry(&self.shared.metrics)
    }

    /// This server's private metrics registry — the source the wire
    /// `Stats` snapshot is assembled from. Exposed so tests (and embedding
    /// applications) can assert on individual counters.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A stalled or byte-dribbling client must not pin this worker forever:
    // a timed-out read/write surfaces as an Io error below and the
    // connection is dropped.
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    loop {
        let req = match crate::protocol::read_request(&mut stream) {
            Ok(req) => req,
            // A clean disconnect shows up as EOF at an envelope boundary.
            Err(ServeError::Truncated { got: 0, .. }) | Err(ServeError::Io(_)) => return,
            Err(e) => {
                // Malformed framing: answer in-band, then drop the
                // connection — stream sync is gone.
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = write_response(&mut stream, &reply);
                return;
            }
        };
        let t0 = Instant::now();
        let span = accelviz_trace::span("serve.request");
        let (bytes, served_frame) = match respond(&shared, req, &mut stream) {
            Ok(r) => r,
            Err(_) => return, // client went away mid-reply
        };
        drop(span);
        shared.metrics.add(CTR_REQUESTS, 1);
        shared.metrics.add(CTR_BYTES_SENT, bytes);
        if served_frame {
            shared.metrics.add(CTR_FRAMES_SERVED, 1);
        }
        shared
            .metrics
            .record_seconds(HIST_LATENCY, t0.elapsed().as_secs_f64());
    }
}

/// Serves one request; returns (wire bytes written, was a frame reply).
fn respond(
    shared: &Shared,
    req: Request,
    stream: &mut TcpStream,
) -> crate::error::Result<(u64, bool)> {
    match req {
        Request::Hello { version } => {
            let reply = if version == VERSION {
                Response::HelloAck {
                    version: VERSION,
                    frame_count: shared.data.len() as u32,
                }
            } else {
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!("server speaks version {VERSION}, client sent {version}"),
                }
            };
            Ok((write_response(stream, &reply)?, false))
        }
        Request::ListFrames => {
            let frames = shared
                .data
                .iter()
                .enumerate()
                .map(|(i, d)| FrameInfo {
                    frame: i as u32,
                    step: i as u64,
                    particles: d.particles().len() as u64,
                    default_threshold: threshold_for_budget(d, shared.config.point_budget),
                })
                .collect();
            Ok((write_response(stream, &Response::FrameList(frames))?, false))
        }
        Request::RequestFrame { frame, threshold } => {
            if threshold.is_nan() {
                // NaN has no place in the density order: extraction's
                // partition_point would silently return an empty prefix,
                // and the many NaN bit patterns would each occupy their
                // own cache slot. Reject in-band. (±Inf stay valid dials:
                // +Inf is the catalog's own "serve everything" sentinel,
                // -Inf is an empty extraction.)
                let reply = Response::Error {
                    code: ERR_BAD_THRESHOLD,
                    message: format!("threshold must not be NaN, got {threshold}"),
                };
                return Ok((write_response(stream, &reply)?, false));
            }
            if frame as usize >= shared.data.len() {
                let reply = Response::Error {
                    code: ERR_NO_SUCH_FRAME,
                    message: format!("frame {frame} requested, {} available", shared.data.len()),
                };
                return Ok((write_response(stream, &reply)?, false));
            }
            let (extracted, hit) = {
                let mut span = accelviz_trace::span("serve.extract");
                span.arg("frame", frame as f64);
                span.arg("threshold", threshold);
                let (extracted, hit) = shared
                    .cache
                    .get_or_build(CacheKey::new(frame, threshold), || {
                        build_frame(shared, frame as usize, threshold)
                    });
                span.arg("cache_hit", hit as u64 as f64);
                (extracted, hit)
            };
            shared.metrics.add(
                if hit {
                    CTR_CACHE_HITS
                } else {
                    CTR_CACHE_MISSES
                },
                1,
            );
            // Encode straight from the cached Arc — no frame clone.
            let bytes = {
                let mut span = accelviz_trace::span("serve.send");
                let bytes = write_envelope(stream, RESP_FRAME, &encode_frame(&extracted))?;
                span.arg("bytes", bytes as f64);
                bytes
            };
            Ok((bytes, true))
        }
        Request::Stats => {
            let snapshot = ServerStats::from_registry(&shared.metrics);
            Ok((write_response(stream, &Response::Stats(snapshot))?, false))
        }
    }
}

fn build_frame(shared: &Shared, frame: usize, threshold: f64) -> HybridFrame {
    HybridFrame::from_partition(
        &shared.data[frame],
        frame,
        threshold,
        shared.config.volume_dims,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn stores(n: usize) -> Vec<PartitionedData> {
        (0..n)
            .map(|i| {
                let ps = Distribution::default_beam().sample(800, i as u64 + 1);
                partition(&ps, PlotType::XYZ, BuildParams::default())
            })
            .collect()
    }

    #[test]
    fn server_binds_an_ephemeral_loopback_port() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        assert!(server.addr().port() != 0);
        assert!(server.addr().ip().is_loopback());
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_under_drop() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        drop(server); // Drop runs stop() after an explicit-path exercise elsewhere
    }
}
