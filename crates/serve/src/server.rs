//! The multi-client frame server.
//!
//! Two interchangeable connection backends sit behind one
//! [`FrameServer`] front:
//!
//! - [`ServeBackend::Threaded`] — the original topology: one acceptor
//!   thread, one handler thread per admitted connection running a strict
//!   request/reply loop.
//! - [`ServeBackend::Reactor`] — the event-driven topology (unix only):
//!   one reactor thread multiplexes *all* connections through
//!   per-connection state machines over non-blocking sockets and a
//!   `poll(2)` readiness loop ([`crate::poll`]), and a small fixed pool
//!   of worker threads runs the actual request handlers. Thread count is
//!   `workers + 1`, independent of how many clients connect.
//!
//! Both backends share everything below the accept layer: one
//! [`ExtractionCache`], one per-server metrics [`Registry`] (counters
//! under the `serve.*` names in [`crate::stats`]), and the single
//! `respond` request handler — so the wire behavior, the `Stats`
//! shape, and every served byte are identical across backends. The
//! server owns the *partitioned* data — the density-sorted stores
//! produced by preprocessing — and extracts hybrid frames on demand at
//! whatever threshold a client dials, which is exactly the paper's
//! split: preprocessing near the simulation, compact hybrid frames
//! shipped to the desktop.
//!
//! Protection: the server sheds rather than degrades. Past
//! [`ServerConfig::max_connections`] a new connection gets one in-band
//! `ERR_BUSY` (with a retry-after hint) and is closed — answered from a
//! small bounded pool (threaded) or inline in the reactor loop, never
//! from per-connection threads, so a connect flood cannot mint threads.
//! Past [`ServerConfig::max_inflight_extractions`] a frame request that
//! would start a *new* extraction gets `ERR_BUSY` on its live connection
//! (cached and coalescing requests are always admitted — they are
//! cheap). A panicking request handler is isolated: the client gets
//! `ERR_INTERNAL`, the connection and the listener survive. Repeated
//! `accept(2)` failures (fd exhaustion) back off exponentially and are
//! counted under `serve.accept_errors` instead of hot-spinning. Shutdown
//! wakes the acceptor deterministically through a self-pipe and drains
//! in-flight replies before returning, bounded by
//! [`ServerConfig::drain_timeout`].
//!
//! Scale-out: N of these servers can sit behind one
//! [`crate::router::FrameRouter`], each owning a rendezvous-hashed slice
//! of the catalog — clients speak the identical protocol to the router
//! and cannot tell the difference (`crate::router`).

use crate::cache::{CacheKey, ExtractionCache, Probe};
use crate::error::ServeError;
use crate::fault::{FaultScript, FaultyTransport};
use crate::protocol::{
    write_response, write_response_v, FrameInfo, Request, Response, ERR_BAD_REQUEST,
    ERR_BAD_THRESHOLD, ERR_BUSY, ERR_INTERNAL, ERR_NO_SUCH_FRAME, RESP_FRAME,
};
use crate::stats::{
    ServerStats, CTR_BYTES_SENT, CTR_CACHE_HITS, CTR_CACHE_MISSES, CTR_FRAMES_SERVED,
    CTR_FRAME_BYTES_RAW, CTR_FRAME_BYTES_WIRE, CTR_HANDLER_PANICS, CTR_LOD_BYTES_WIRE,
    CTR_LOD_CHUNKS, CTR_LOD_REQUESTS, CTR_REQUESTS, CTR_SHED_CONNECTIONS, CTR_SHED_EXTRACTIONS,
    HIST_LATENCY,
};
use crate::wire::{encode_frame, encode_frame_v2, write_envelope_v, V1, V2, VERSION};
use accelviz_core::hybrid::HybridFrame;
use accelviz_octree::extraction::{threshold_for_budget, threshold_for_budget_tree};
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_store::ResidentRun;
use accelviz_trace::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which connection machinery a [`FrameServer`] runs. The wire protocol,
/// shedding behavior, and `Stats` shape are identical either way; only
/// the threading topology differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeBackend {
    /// One OS thread per admitted connection (the original topology).
    /// The only backend on non-unix platforms.
    Threaded,
    /// One reactor thread multiplexing all connections over `poll(2)`
    /// plus a fixed pool of [`ServerConfig::worker_threads`] request
    /// workers. Unix only; falls back to [`ServeBackend::Threaded`]
    /// elsewhere.
    Reactor,
}

impl ServeBackend {
    /// The backend chosen by the `ACCELVIZ_SERVE_BACKEND` environment
    /// variable (`"threaded"` / `"reactor"`), defaulting to the reactor
    /// on unix and the threaded backend elsewhere. This is what
    /// [`ServerConfig::default`] uses, so the whole test suite (and the
    /// CI backend matrix) can steer every server in the process.
    pub fn from_env() -> ServeBackend {
        ServeBackend::from_env_value(std::env::var("ACCELVIZ_SERVE_BACKEND").ok().as_deref())
    }

    fn from_env_value(value: Option<&str>) -> ServeBackend {
        match value {
            Some("threaded") => ServeBackend::Threaded,
            Some("reactor") => ServeBackend::Reactor,
            _ if cfg!(unix) => ServeBackend::Reactor,
            _ => ServeBackend::Threaded,
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Extractions the shared cache holds.
    pub cache_capacity: usize,
    /// Resolution of the density volume in served frames.
    pub volume_dims: [usize; 3],
    /// Point budget behind the catalog's suggested threshold.
    pub point_budget: usize,
    /// How long a worker blocks reading a request before the connection
    /// is dropped; `None` waits forever. Without a bound, a client that
    /// connects and goes silent (or dribbles bytes) pins its
    /// thread-per-connection worker — or its reactor connection slot —
    /// indefinitely.
    pub read_timeout: Option<Duration>,
    /// Same bound for writes (a client that stops draining its socket).
    pub write_timeout: Option<Duration>,
    /// Connections served concurrently; past this, new arrivals get one
    /// in-band `ERR_BUSY` and are closed (thread-per-connection must not
    /// become thread-per-attacker).
    pub max_connections: usize,
    /// Frame requests allowed to start *new* extractions concurrently;
    /// past this they are shed with `ERR_BUSY` on their live connection.
    /// Cached and coalescing requests are always admitted.
    pub max_inflight_extractions: usize,
    /// How long shutdown waits for in-flight replies to finish.
    pub drain_timeout: Duration,
    /// Which connection backend to run; defaults from
    /// [`ServeBackend::from_env`].
    pub backend: ServeBackend,
    /// Request-handler threads the reactor backend runs (clamped to at
    /// least 1). The threaded backend ignores this — its handler count
    /// is its connection count.
    pub worker_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_capacity: 8,
            volume_dims: [16, 16, 16],
            point_budget: 1_000,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 64,
            max_inflight_extractions: 8,
            drain_timeout: Duration::from_secs(1),
            backend: ServeBackend::from_env(),
            worker_threads: 4,
        }
    }
}

/// Where the server's frames live: fully resident in memory (the
/// original topology — every partitioned store loaded up front), or
/// backed by an on-disk run whose particle data pages in and out under
/// [`ResidentRun`]'s byte budget. The request handlers are written
/// against this enum, so an out-of-core server speaks the identical
/// protocol and serves bit-identical frames.
pub(crate) enum Backend {
    /// Every frame's partitioned store held in memory.
    Resident(Vec<PartitionedData>),
    /// Frames fetched on demand from an `accelviz-store` run file.
    Stored(Arc<ResidentRun>),
}

impl Backend {
    fn frame_count(&self) -> usize {
        match self {
            Backend::Resident(data) => data.len(),
            Backend::Stored(run) => run.frame_count(),
        }
    }

    /// The frame catalog. The stored backend answers from directory
    /// metadata and the always-resident octrees — no particle I/O.
    fn frame_infos(&self, point_budget: usize) -> Vec<FrameInfo> {
        match self {
            Backend::Resident(data) => data
                .iter()
                .enumerate()
                .map(|(i, d)| FrameInfo {
                    frame: i as u32,
                    step: i as u64,
                    particles: d.particles().len() as u64,
                    default_threshold: threshold_for_budget(d, point_budget),
                })
                .collect(),
            Backend::Stored(run) => (0..run.frame_count())
                .map(|i| FrameInfo {
                    frame: i as u32,
                    step: i as u64,
                    particles: run.particle_count(i),
                    default_threshold: threshold_for_budget_tree(&run.tree(i).0, point_budget),
                })
                .collect(),
        }
    }
}

/// The state both backends (and every handler) share.
pub(crate) struct Shared {
    pub(crate) backend: Backend,
    pub(crate) config: ServerConfig,
    pub(crate) cache: ExtractionCache,
    pub(crate) metrics: Registry,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active_connections: AtomicUsize,
    pub(crate) inflight_requests: AtomicUsize,
    pub(crate) building_extractions: AtomicUsize,
    /// Server-side chaos hook: when set, every accepted connection is
    /// wrapped in a [`FaultyTransport`] drawing from this script.
    /// Production servers leave it `None` and pay nothing.
    pub(crate) faults: Option<Arc<FaultScript>>,
}

/// The in-band message a shed connection gets with its `ERR_BUSY`.
pub(crate) const SHED_CONNECTION_MSG: &str = "server at connection capacity; retry after ~100 ms";

/// Decrements a shared gauge on drop, panic or not. Shared with the
/// router (`crate::router`), whose connection and in-flight gauges
/// follow the same discipline.
pub(crate) struct CountGuard<'a>(pub(crate) &'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running frame server. Dropping it (or calling
/// [`FrameServer::shutdown`]) stops the accept machinery — woken
/// deterministically through a self-pipe, so an *idle* server shuts down
/// promptly too — then drains in-flight replies (bounded by
/// [`ServerConfig::drain_timeout`]).
pub struct FrameServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    engine: Option<Engine>,
}

/// The running accept machinery, one variant per [`ServeBackend`].
enum Engine {
    #[cfg(unix)]
    Threaded {
        accept: Option<JoinHandle<()>>,
        waker: Arc<crate::poll::Waker>,
    },
    #[cfg(not(unix))]
    Threaded { accept: Option<JoinHandle<()>> },
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorEngine),
}

impl Engine {
    fn start(listener: TcpListener, shared: Arc<Shared>) -> io::Result<Engine> {
        #[cfg(unix)]
        {
            match shared.config.backend {
                ServeBackend::Reactor => Ok(Engine::Reactor(crate::reactor::ReactorEngine::spawn(
                    listener, shared,
                )?)),
                ServeBackend::Threaded => {
                    let waker = Arc::new(crate::poll::Waker::new()?);
                    let accept_waker = Arc::clone(&waker);
                    let accept = std::thread::spawn(move || {
                        threaded_accept_loop(shared, listener, accept_waker)
                    });
                    Ok(Engine::Threaded {
                        accept: Some(accept),
                        waker,
                    })
                }
            }
        }
        #[cfg(not(unix))]
        {
            // No poll(2) shim here: always the threaded backend, woken
            // at shutdown by a throwaway connection (best effort).
            let accept = std::thread::spawn(move || blocking_accept_loop(shared, listener));
            Ok(Engine::Threaded {
                accept: Some(accept),
            })
        }
    }
}

impl FrameServer {
    /// Binds a loopback server on an OS-assigned port — the test and
    /// example topology. The partitioned stores are served in index
    /// order; frame `i`'s step is `i`.
    pub fn spawn_loopback(
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn("127.0.0.1:0", data, config)
    }

    /// Binds `addr` and starts accepting clients.
    pub fn spawn(
        addr: &str,
        data: Vec<PartitionedData>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner(addr, Backend::Resident(data), config, None)
    }

    /// Binds a loopback server over an out-of-core run: frames come from
    /// `run`'s disk file and only [`ResidentRun`]'s budget worth of
    /// particle data is ever in memory.
    pub fn spawn_stored_loopback(
        run: Arc<ResidentRun>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_stored("127.0.0.1:0", run, config)
    }

    /// Binds `addr` over an out-of-core run backend.
    pub fn spawn_stored(
        addr: &str,
        run: Arc<ResidentRun>,
        config: ServerConfig,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner(addr, Backend::Stored(run), config, None)
    }

    /// A loopback server whose every connection is faulted by `script` —
    /// the server-side chaos hook. Only tests call this; [`spawn`] never
    /// wraps streams.
    ///
    /// [`spawn`]: FrameServer::spawn
    pub fn spawn_chaos(
        data: Vec<PartitionedData>,
        config: ServerConfig,
        script: Arc<FaultScript>,
    ) -> io::Result<FrameServer> {
        FrameServer::spawn_inner("127.0.0.1:0", Backend::Resident(data), config, Some(script))
    }

    fn spawn_inner(
        addr: &str,
        backend: Backend,
        config: ServerConfig,
        faults: Option<Arc<FaultScript>>,
    ) -> io::Result<FrameServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            config,
            cache: ExtractionCache::new(config.cache_capacity),
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
            building_extractions: AtomicUsize::new(0),
            faults,
        });
        let engine = Engine::start(listener, Arc::clone(&shared))?;
        Ok(FrameServer {
            shared,
            addr: local,
            engine: Some(engine),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend this server is actually running (the configured one,
    /// except on non-unix platforms where it is always
    /// [`ServeBackend::Threaded`]).
    pub fn backend(&self) -> ServeBackend {
        match self.engine {
            #[cfg(unix)]
            Some(Engine::Reactor(_)) => ServeBackend::Reactor,
            _ => ServeBackend::Threaded,
        }
    }

    /// A local snapshot of the statistics (the same data a client gets
    /// from [`Request::Stats`]).
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_registry(&self.shared.metrics)
    }

    /// This server's private metrics registry — the source the wire
    /// `Stats` snapshot is assembled from. Exposed so tests (and embedding
    /// applications) can assert on individual counters.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Stops accepting connections, joins the accept machinery, and
    /// drains in-flight replies (bounded by
    /// [`ServerConfig::drain_timeout`]).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(engine) = self.engine.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match engine {
            #[cfg(unix)]
            Engine::Threaded { accept, waker } => {
                // Deterministic wake: the acceptor polls the self-pipe
                // alongside the listener, so an idle server exits its
                // accept loop immediately instead of waiting for the
                // next connection to happen by.
                waker.wake();
                if let Some(handle) = accept {
                    let _ = handle.join();
                }
                self.drain_inflight();
            }
            #[cfg(not(unix))]
            Engine::Threaded { accept } => {
                // Best-effort wake on platforms without the poll shim.
                let _ = TcpStream::connect(self.addr);
                if let Some(handle) = accept {
                    let _ = handle.join();
                }
                self.drain_inflight();
            }
            #[cfg(unix)]
            Engine::Reactor(mut reactor) => {
                // The reactor drains its own connections (bounded by
                // drain_timeout) before its thread exits.
                reactor.stop();
            }
        }
    }

    /// Graceful drain for the threaded backend: let replies already
    /// being computed or written reach their clients before the process
    /// moves on.
    fn drain_inflight(&self) {
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.inflight_requests.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The bounded pool that answers shed connections for the threaded
/// backend. The old design spawned one OS thread per shed connection —
/// which let a connect flood mint unbounded threads, defeating the very
/// cap being enforced. This pool has a fixed worker count and a bounded
/// queue; when the queue overflows, the connection is simply dropped
/// (the shed was already counted, and under a real flood a silent close
/// is the correct degraded answer).
struct ShedPool {
    tx: Option<mpsc::SyncSender<TcpStream>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShedPool {
    const WORKERS: usize = 2;
    const QUEUE: usize = 32;
    /// Cap on how long a shed worker waits for the client's Hello (a
    /// real client sends it immediately); keeps a mute flood from
    /// pinning the pool and bounds how long shutdown can block on it.
    const MAX_WAIT: Duration = Duration::from_secs(1);

    fn start(shared: &Arc<Shared>) -> ShedPool {
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(Self::QUEUE);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..Self::WORKERS)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || loop {
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    let Ok(stream) = next else { break };
                    if shared.shutdown.load(Ordering::SeqCst) {
                        continue; // shutting down: just close it
                    }
                    answer_shed(&shared, stream);
                })
            })
            .collect();
        ShedPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Hands a shed connection to the pool; drops it (closing the
    /// socket) when the queue is full.
    fn offer(&self, stream: TcpStream) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(stream);
        }
    }
}

impl Drop for ShedPool {
    fn drop(&mut self) {
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Answers one shed connection in-band: consume the client's first
/// request (its Hello) so the close after the reply is clean — closing
/// with unread inbound data would RST the socket and the client would
/// never see the reply — then send `ERR_BUSY` and drop the stream.
fn answer_shed(shared: &Shared, mut stream: TcpStream) {
    let cap = |t: Option<Duration>| Some(t.unwrap_or(ShedPool::MAX_WAIT).min(ShedPool::MAX_WAIT));
    let _ = stream.set_read_timeout(cap(shared.config.read_timeout));
    let _ = stream.set_write_timeout(cap(shared.config.write_timeout));
    let _ = crate::protocol::read_request(&mut stream);
    let _ = write_response(
        &mut stream,
        &Response::Error {
            code: ERR_BUSY,
            message: SHED_CONNECTION_MSG.to_string(),
        },
    );
}

/// Admits or sheds one accepted connection (threaded backend).
fn admit(shared: &Arc<Shared>, shed: &ShedPool, stream: TcpStream) {
    // Connection cap: shed with one in-band ERR_BUSY from the bounded
    // pool rather than spawning a handler thread.
    if shared.active_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
        shared.metrics.add(CTR_SHED_CONNECTIONS, 1);
        shed.offer(stream);
        return;
    }
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    let conn_shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let _guard = CountGuard(&conn_shared.active_connections);
        handle_connection(&conn_shared, stream);
    });
}

/// The threaded backend's accept loop: a non-blocking listener polled
/// alongside the shutdown self-pipe, with exponential backoff (and a
/// `serve.accept_errors` count) on repeated `accept(2)` failures.
#[cfg(unix)]
fn threaded_accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    waker: Arc<crate::poll::Waker>,
) {
    use crate::poll::{poll, AcceptBackoff, PollEntry};
    use crate::stats::CTR_ACCEPT_ERRORS;
    use std::os::unix::io::AsRawFd;

    if listener.set_nonblocking(true).is_err() {
        // Without a non-blocking listener the poll loop would wedge;
        // fall back to the classic blocking loop (still with the shed
        // pool and error backoff, but shutdown wake is best-effort).
        return blocking_accept_fallback(shared, listener);
    }
    let shed = ShedPool::start(&shared);
    let mut backoff = AcceptBackoff::new();
    let mut cooldown: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // During an error-backoff cooldown the listener is left out of
        // the poll set: the whole point is to stop re-trying accept (and
        // burning CPU) until the pause elapses.
        let now = Instant::now();
        let listener_armed = match cooldown {
            Some(until) if until > now => false,
            _ => {
                cooldown = None;
                true
            }
        };
        let timeout = cooldown.map(|until| until.saturating_duration_since(now));
        let mut entries = vec![PollEntry {
            fd: waker.fd(),
            read: true,
            write: false,
        }];
        if listener_armed {
            entries.push(PollEntry {
                fd: listener.as_raw_fd(),
                read: true,
                write: false,
            });
        }
        let ready = match poll(&entries, timeout) {
            Ok(ready) => ready,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if ready[0].readable {
            waker.drain();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if listener_armed && !ready[1].is_empty() {
            // Drain the whole accept backlog while it's hot.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff.on_success();
                        // Handler threads do blocking I/O; undo the
                        // non-blocking flag inherited on some platforms.
                        let _ = stream.set_nonblocking(false);
                        admit(&shared, &shed, stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // EMFILE and friends: count it and cool down
                        // instead of hot-spinning on a failing accept.
                        shared.metrics.add(CTR_ACCEPT_ERRORS, 1);
                        cooldown = Some(Instant::now() + backoff.on_error());
                        break;
                    }
                }
            }
        }
    }
    // ShedPool::drop joins its workers (bounded by MAX_WAIT).
}

/// Blocking accept loop used when the listener can't go non-blocking
/// (and as the whole story on non-unix builds): keeps the shed pool,
/// the accept-error counter, and a sleep-based backoff, but shutdown
/// wake relies on the next connection arriving.
#[cfg(unix)]
fn blocking_accept_fallback(shared: Arc<Shared>, listener: TcpListener) {
    blocking_accept_body(shared, listener)
}

#[cfg(not(unix))]
fn blocking_accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    blocking_accept_body(shared, listener)
}

fn blocking_accept_body(shared: Arc<Shared>, listener: TcpListener) {
    use crate::stats::CTR_ACCEPT_ERRORS;
    let shed = ShedPool::start(&shared);
    let mut error_pause = Duration::from_millis(1);
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                error_pause = Duration::from_millis(1);
                admit(&shared, &shed, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                shared.metrics.add(CTR_ACCEPT_ERRORS, 1);
                std::thread::sleep(error_pause);
                error_pause = (error_pause * 2).min(Duration::from_millis(100));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A stalled or byte-dribbling client must not pin this worker forever:
    // a timed-out read/write surfaces as an Io error below and the
    // connection is dropped.
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    match &shared.faults {
        Some(script) => serve_loop(shared, FaultyTransport::new(stream, Arc::clone(script))),
        None => serve_loop(shared, stream),
    }
}

fn serve_loop<S: Read + Write>(shared: &Shared, mut stream: S) {
    // Until a `Hello` negotiates otherwise, the session speaks v1: a
    // pre-v2 client that skips the handshake gets exactly the byte
    // stream it always did.
    let mut session_version = V1;
    loop {
        let req = match crate::protocol::read_request(&mut stream) {
            Ok(req) => req,
            // A clean disconnect shows up as EOF at an envelope boundary.
            Err(ServeError::Truncated { got: 0, .. }) | Err(ServeError::Io(_)) => return,
            Err(e) => {
                // Malformed framing: answer in-band, then drop the
                // connection — stream sync is gone.
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = write_response_v(&mut stream, session_version, &reply);
                return;
            }
        };
        // Graceful shutdown: requests already being processed drain to
        // their replies, but nothing *new* is admitted once the flag is
        // up — the connection is dropped at the request boundary.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let t0 = Instant::now();
        let span = accelviz_trace::span("serve.request");
        let _inflight = CountGuard({
            shared.inflight_requests.fetch_add(1, Ordering::SeqCst);
            &shared.inflight_requests
        });
        // Panic isolation: a poisoned request must not take the
        // connection (let alone the listener) down with it. The client
        // gets ERR_INTERNAL and the request/reply loop continues.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond(shared, req, &mut stream, &mut session_version)
        }));
        let (bytes, served_frame) = match outcome {
            Ok(Ok(r)) => r,
            Ok(Err(_)) => return, // client went away mid-reply
            Err(_panic) => {
                shared.metrics.add(CTR_HANDLER_PANICS, 1);
                let reply = Response::Error {
                    code: ERR_INTERNAL,
                    message: "internal error serving this request; the connection survives"
                        .to_string(),
                };
                match write_response_v(&mut stream, session_version, &reply) {
                    Ok(bytes) => (bytes, false),
                    Err(_) => return,
                }
            }
        };
        drop(span);
        shared.metrics.add(CTR_REQUESTS, 1);
        shared.metrics.add(CTR_BYTES_SENT, bytes);
        if served_frame {
            shared.metrics.add(CTR_FRAMES_SERVED, 1);
        }
        shared
            .metrics
            .record_seconds(HIST_LATENCY, t0.elapsed().as_secs_f64());
    }
}

/// Tries to take one extraction permit; `None` means the limit is
/// reached and the request should be shed.
fn try_extraction_permit(shared: &Shared) -> Option<CountGuard<'_>> {
    let limit = shared.config.max_inflight_extractions;
    let gauge = &shared.building_extractions;
    let mut current = gauge.load(Ordering::SeqCst);
    loop {
        if current >= limit {
            return None;
        }
        match gauge.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return Some(CountGuard(gauge)),
            Err(actual) => current = actual,
        }
    }
}

/// Serves one request; returns (wire bytes written, was a frame reply).
/// `session_version` is the connection's negotiated protocol version —
/// `Hello` updates it, every reply is framed with it. `stream` is any
/// writer: the live socket for the threaded backend, a staging buffer
/// for the reactor (which flushes it under write readiness).
pub(crate) fn respond<S: Write>(
    shared: &Shared,
    req: Request,
    stream: &mut S,
    session_version: &mut u16,
) -> crate::error::Result<(u64, bool)> {
    match req {
        Request::Hello { version } => {
            let reply = if version == 0 {
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!("protocol version must be at least 1, client sent {version}"),
                }
            } else {
                // Speak the older of the two sides: a v1 client keeps its
                // byte-identical session, a v2 (or future) client gets
                // the newest encoding this build knows.
                let negotiated = version.min(VERSION);
                *session_version = negotiated;
                Response::HelloAck {
                    version: negotiated,
                    frame_count: shared.backend.frame_count() as u32,
                }
            };
            Ok((write_response_v(stream, *session_version, &reply)?, false))
        }
        Request::ListFrames => {
            let frames = shared.backend.frame_infos(shared.config.point_budget);
            Ok((
                write_response_v(stream, *session_version, &Response::FrameList(frames))?,
                false,
            ))
        }
        Request::RequestFrame { frame, threshold } => {
            let extracted = match acquire_frame(shared, frame, threshold, stream, *session_version)?
            {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // Encode straight from the cached Arc — no frame clone. The
            // session version picks the payload encoding; both are
            // counted so the stats expose the live compression ratio.
            let bytes = {
                let mut span = accelviz_trace::span("serve.send");
                let (payload, raw_len) = if *session_version >= V2 {
                    encode_frame_v2(&extracted)
                } else {
                    let payload = encode_frame(&extracted);
                    let raw_len = payload.len() as u64;
                    (payload, raw_len)
                };
                shared.metrics.add(CTR_FRAME_BYTES_RAW, raw_len);
                shared
                    .metrics
                    .add(CTR_FRAME_BYTES_WIRE, payload.len() as u64);
                let bytes = write_envelope_v(stream, *session_version, RESP_FRAME, &payload)?;
                span.arg("bytes", bytes as f64);
                bytes
            };
            Ok((bytes, true))
        }
        Request::RequestFrameProgressive {
            frame,
            threshold,
            chunk_bytes,
        } => {
            // The chunk records ride v2 envelopes and splice back into a
            // frame the v2 trailer can verify; a v1 session has neither,
            // so the request is a protocol error there — and pre-v2
            // clients never send it, keeping their byte streams frozen.
            if *session_version < V2 {
                let reply = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: "progressive streaming requires a v2 session; \
                              send Hello with version >= 2 first"
                        .to_string(),
                };
                return Ok((write_response_v(stream, *session_version, &reply)?, false));
            }
            let extracted = match acquire_frame(shared, frame, threshold, stream, *session_version)?
            {
                Ok(frame) => frame,
                Err(reply_written) => return Ok(reply_written),
            };
            // Same cache entry as a plain fetch — a progressive and a
            // full request for the same (frame, threshold) coalesce on
            // one extraction; only the wire shape differs from here on.
            let records = {
                let mut span = accelviz_trace::span("serve.lod_send");
                let records = crate::lod::plan_frame_chunks(
                    &extracted,
                    crate::lod::chunk_budget(chunk_bytes),
                );
                span.arg("chunks", records.len() as f64);
                records
            };
            let mut bytes = 0u64;
            for record in &records {
                bytes += crate::protocol::write_chunk(stream, record)?;
            }
            shared.metrics.add(CTR_LOD_REQUESTS, 1);
            shared.metrics.add(CTR_LOD_CHUNKS, records.len() as u64);
            shared.metrics.add(CTR_LOD_BYTES_WIRE, bytes);
            Ok((bytes, true))
        }
        Request::Stats => {
            let snapshot = ServerStats::from_registry(&shared.metrics);
            Ok((
                write_response_v(stream, *session_version, &Response::Stats(snapshot))?,
                false,
            ))
        }
    }
}

/// The shared admission-and-build path behind both frame request kinds:
/// validates the threshold and frame index, applies extraction-limit
/// shedding, pages the frame in on the stored backend, and resolves the
/// extraction through the cache. On a policy failure the in-band error
/// reply is already written and the inner `Err` carries `respond`'s
/// return value for it; the outer `Err` is a dead client connection.
fn acquire_frame<S: Write>(
    shared: &Shared,
    frame: u32,
    threshold: f64,
    stream: &mut S,
    session_version: u16,
) -> crate::error::Result<std::result::Result<Arc<HybridFrame>, (u64, bool)>> {
    if threshold.is_nan() {
        // NaN has no place in the density order: extraction's
        // partition_point would silently return an empty prefix,
        // and the many NaN bit patterns would each occupy their
        // own cache slot. Reject in-band. (±Inf stay valid dials:
        // +Inf is the catalog's own "serve everything" sentinel,
        // -Inf is an empty extraction.)
        let reply = Response::Error {
            code: ERR_BAD_THRESHOLD,
            message: format!("threshold must not be NaN, got {threshold}"),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    }
    if frame as usize >= shared.backend.frame_count() {
        let reply = Response::Error {
            code: ERR_NO_SUCH_FRAME,
            message: format!(
                "frame {frame} requested, {} available",
                shared.backend.frame_count()
            ),
        };
        return Ok(Err((
            write_response_v(stream, session_version, &reply)?,
            false,
        )));
    }
    let key = CacheKey::new(frame, threshold);
    // Load shedding at the extraction limit: only requests that
    // would start a *new* extraction are shed — cached frames and
    // coalescing waiters are cheap and always admitted. The probe
    // is advisory (the entry may change before get_or_build), so
    // the limit is a strong bound, not a hard invariant.
    let probe = shared.cache.probe(&key);
    let _permit = match probe {
        Probe::Vacant => match try_extraction_permit(shared) {
            Some(p) => Some(p),
            None => {
                shared.metrics.add(CTR_SHED_EXTRACTIONS, 1);
                let reply = Response::Error {
                    code: ERR_BUSY,
                    message: "extraction capacity reached; retry after ~100 ms".to_string(),
                };
                return Ok(Err((
                    write_response_v(stream, session_version, &reply)?,
                    false,
                )));
            }
        },
        Probe::Ready | Probe::Building => None,
    };
    // The stored backend pages the frame's particles in *before*
    // committing to build, so a disk failure is an in-band
    // ERR_INTERNAL instead of a panic. A Ready probe skips the
    // fetch — serving a cached extraction must not churn the
    // residency window.
    let part: Option<Arc<PartitionedData>> = match &shared.backend {
        Backend::Stored(run) if probe != Probe::Ready => match run.fetch(frame as usize) {
            Ok(fetch) => Some(fetch.data),
            Err(e) => {
                let reply = Response::Error {
                    code: ERR_INTERNAL,
                    message: format!("run store failed loading frame {frame}: {e}"),
                };
                return Ok(Err((
                    write_response_v(stream, session_version, &reply)?,
                    false,
                )));
            }
        },
        _ => None,
    };
    let (extracted, hit) = {
        let mut span = accelviz_trace::span("serve.extract");
        span.arg("frame", frame as f64);
        span.arg("threshold", threshold);
        let (extracted, hit) = shared
            .cache
            .get_or_build(CacheKey::new(frame, threshold), || {
                build_frame(shared, part.as_deref(), frame as usize, threshold)
            });
        span.arg("cache_hit", hit as u64 as f64);
        (extracted, hit)
    };
    shared.metrics.add(
        if hit {
            CTR_CACHE_HITS
        } else {
            CTR_CACHE_MISSES
        },
        1,
    );
    Ok(Ok(extracted))
}

/// Builds one frame for the extraction cache. `part` is the paged-in
/// partition for the stored backend (`None` for the resident backend, or
/// in the rare race where a Ready probe was evicted before the build —
/// then the fetch reruns here, and a disk failure panics into the
/// handler's isolation instead of silently serving nothing).
fn build_frame(
    shared: &Shared,
    part: Option<&PartitionedData>,
    frame: usize,
    threshold: f64,
) -> HybridFrame {
    let dims = shared.config.volume_dims;
    match (&shared.backend, part) {
        (Backend::Resident(data), _) => {
            HybridFrame::from_partition(&data[frame], frame, threshold, dims)
        }
        (Backend::Stored(_), Some(p)) => HybridFrame::from_partition(p, frame, threshold, dims),
        (Backend::Stored(run), None) => {
            let fetch = run
                .fetch(frame)
                .unwrap_or_else(|e| panic!("run store failed loading frame {frame}: {e}"));
            HybridFrame::from_partition(&fetch.data, frame, threshold, dims)
        }
    }
}

/// Handles one decoded-or-failed request for the reactor backend: the
/// same `read_request` → `respond` → counters path as [`serve_loop`],
/// but over an in-memory request slice and a staging buffer instead of
/// a live socket. Returns `(reply_bytes, new_session_version,
/// close_after_reply)`; an empty reply means "just close".
#[cfg(unix)]
pub(crate) fn process_request_bytes(
    shared: &Shared,
    request: &[u8],
    session_version: u16,
    t0: Instant,
) -> (Vec<u8>, u16, bool) {
    let mut version = session_version;
    let mut reply = Vec::new();
    let req = match crate::protocol::read_request(&mut &request[..]) {
        Ok(req) => req,
        Err(e) => {
            // Malformed framing: answer in-band, then drop the
            // connection — stream sync is gone. (Mirrors serve_loop.)
            let _ = write_response_v(
                &mut reply,
                version,
                &Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                },
            );
            return (reply, version, true);
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return (Vec::new(), version, true);
    }
    let span = accelviz_trace::span("serve.request");
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        respond(shared, req, &mut reply, &mut version)
    }));
    let (bytes, served_frame) = match outcome {
        // Writing into a Vec cannot fail, so Ok(Err(_)) is unreachable
        // in practice; treat it as a close for completeness.
        Ok(Ok(r)) => r,
        Ok(Err(_)) => return (Vec::new(), version, true),
        Err(_panic) => {
            shared.metrics.add(CTR_HANDLER_PANICS, 1);
            reply.clear();
            match write_response_v(
                &mut reply,
                version,
                &Response::Error {
                    code: ERR_INTERNAL,
                    message: "internal error serving this request; the connection survives"
                        .to_string(),
                },
            ) {
                Ok(bytes) => (bytes, false),
                Err(_) => return (Vec::new(), version, true),
            }
        }
    };
    drop(span);
    shared.metrics.add(CTR_REQUESTS, 1);
    shared.metrics.add(CTR_BYTES_SENT, bytes);
    if served_frame {
        shared.metrics.add(CTR_FRAMES_SERVED, 1);
    }
    shared
        .metrics
        .record_seconds(HIST_LATENCY, t0.elapsed().as_secs_f64());
    (reply, version, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_beam::distribution::Distribution;
    use accelviz_octree::builder::{partition, BuildParams};
    use accelviz_octree::plots::PlotType;

    fn stores(n: usize) -> Vec<PartitionedData> {
        (0..n)
            .map(|i| {
                let ps = Distribution::default_beam().sample(800, i as u64 + 1);
                partition(&ps, PlotType::XYZ, BuildParams::default())
            })
            .collect()
    }

    #[test]
    fn server_binds_an_ephemeral_loopback_port() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        assert!(server.addr().port() != 0);
        assert!(server.addr().ip().is_loopback());
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_under_drop() {
        let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
        drop(server); // Drop runs stop() after an explicit-path exercise elsewhere
    }

    #[test]
    fn both_backends_spawn_and_report_themselves() {
        for backend in [ServeBackend::Threaded, ServeBackend::Reactor] {
            let config = ServerConfig {
                backend,
                ..ServerConfig::default()
            };
            let server = FrameServer::spawn_loopback(stores(1), config).unwrap();
            if cfg!(unix) {
                assert_eq!(server.backend(), backend);
            } else {
                assert_eq!(server.backend(), ServeBackend::Threaded);
            }
            server.shutdown();
        }
    }

    #[test]
    fn backend_env_values_parse_with_a_platform_default() {
        assert_eq!(
            ServeBackend::from_env_value(Some("threaded")),
            ServeBackend::Threaded
        );
        assert_eq!(
            ServeBackend::from_env_value(Some("reactor")),
            ServeBackend::Reactor
        );
        let default = ServeBackend::from_env_value(None);
        let garbage = ServeBackend::from_env_value(Some("epoll"));
        assert_eq!(default, garbage, "unknown values fall to the default");
        if cfg!(unix) {
            assert_eq!(default, ServeBackend::Reactor);
        } else {
            assert_eq!(default, ServeBackend::Threaded);
        }
    }

    #[test]
    fn extraction_permits_are_bounded_and_returned() {
        let config = ServerConfig {
            max_inflight_extractions: 2,
            ..ServerConfig::default()
        };
        let shared = Shared {
            backend: Backend::Resident(Vec::new()),
            config,
            cache: ExtractionCache::new(2),
            metrics: Registry::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_requests: AtomicUsize::new(0),
            building_extractions: AtomicUsize::new(0),
            faults: None,
        };
        let a = try_extraction_permit(&shared);
        let b = try_extraction_permit(&shared);
        assert!(a.is_some() && b.is_some());
        assert!(try_extraction_permit(&shared).is_none(), "limit is 2");
        drop(a);
        assert!(
            try_extraction_permit(&shared).is_some(),
            "a dropped permit frees a slot"
        );
    }
}
