//! Structured errors for the frame service.
//!
//! Every failure mode a client or server can hit on the wire — transport
//! errors, framing corruption, protocol violations, and errors the server
//! reports back in-band — is a variant here. Corrupt input must surface as
//! an error, never a panic: the decode paths are written against this
//! enum and the corruption tests in `tests/wire_corruption.rs` hold them
//! to it.

use std::fmt;
use std::io;

/// Anything that can go wrong speaking the accelviz-serve protocol.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying transport error (connect, read, write).
    Io(io::Error),
    /// The stream did not start with the `AVWF` envelope magic.
    BadMagic([u8; 4]),
    /// The peer speaks an envelope version we do not.
    UnsupportedVersion(u16),
    /// The envelope kind byte names no known message.
    UnknownKind(u8),
    /// The envelope checksum did not match the received bytes.
    ChecksumMismatch {
        /// Checksum carried by the envelope.
        expected: u64,
        /// Checksum recomputed over the received bytes.
        actual: u64,
    },
    /// The stream ended mid-envelope.
    Truncated {
        /// Bytes the decoder still needed.
        needed: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// The envelope framed correctly but its payload does not decode.
    Corrupt(String),
    /// The server answered with an in-band error reply.
    Remote {
        /// Machine-readable error code (one of the `ERR_*` constants in
        /// [`crate::protocol`]).
        code: u16,
        /// Human-readable server message.
        message: String,
    },
    /// The peer sent a well-formed message that violates the protocol
    /// state machine (e.g. a response where a request belongs).
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::BadMagic(m) => {
                write!(f, "bad envelope magic {m:?} (expected \"AVWF\")")
            }
            ServeError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            ServeError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02x}"),
            ServeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: envelope says {expected:#018x}, stream hashes to {actual:#018x}"
            ),
            ServeError::Truncated { needed, got } => {
                write!(f, "truncated stream: needed {needed} more bytes, got {got}")
            }
            ServeError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServeError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ServeError {
    /// Whether a retry (possibly over a fresh connection) has a real
    /// chance of succeeding. Transport hiccups and framing desync are
    /// transient — the strict request/reply protocol makes a reconnect +
    /// re-handshake + replay safe. A version mismatch or a server-side
    /// rejection of the request itself is not going to change on retry;
    /// the one retryable in-band error is `ERR_BUSY`, the server's
    /// explicit "come back shortly".
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::Interrupted
                    | io::ErrorKind::NotConnected
            ),
            // Stream desync or corruption: the connection is gone, but a
            // reconnect starts from a clean envelope boundary.
            ServeError::Truncated { .. }
            | ServeError::ChecksumMismatch { .. }
            | ServeError::Corrupt(_)
            | ServeError::BadMagic(_)
            | ServeError::UnknownKind(_)
            | ServeError::Protocol(_) => true,
            ServeError::UnsupportedVersion(_) => false,
            ServeError::Remote { code, .. } => *code == crate::protocol::ERR_BUSY,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Maps onto the closest [`io::ErrorKind`] instead of flattening
/// everything to one kind, so `FrameSource` callers and the retry
/// classifier can tell a timeout from corruption from a server
/// rejection. The original [`ServeError`] rides along as the error's
/// source, downcastable via [`io::Error::get_ref`].
impl From<ServeError> for io::Error {
    fn from(e: ServeError) -> io::Error {
        let kind = match &e {
            ServeError::Io(_) => {
                let ServeError::Io(inner) = e else {
                    unreachable!()
                };
                return inner;
            }
            ServeError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            ServeError::UnsupportedVersion(_) => io::ErrorKind::Unsupported,
            ServeError::Remote { .. } => io::ErrorKind::Other,
            ServeError::BadMagic(_)
            | ServeError::UnknownKind(_)
            | ServeError::ChecksumMismatch { .. }
            | ServeError::Corrupt(_)
            | ServeError::Protocol(_) => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains("checksum"), "{s}");
        assert!(ServeError::BadMagic(*b"HTTP").to_string().contains("AVWF"));
        assert!(ServeError::Remote {
            code: 2,
            message: "no such frame".into()
        }
        .to_string()
        .contains("no such frame"));
    }

    #[test]
    fn io_conversion_roundtrip_preserves_message() {
        let e = ServeError::Truncated { needed: 8, got: 3 };
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::UnexpectedEof);
        assert!(io.to_string().contains("truncated"));
    }

    #[test]
    fn io_conversion_preserves_kinds() {
        let timeout = ServeError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow link"));
        let io: io::Error = timeout.into();
        assert_eq!(io.kind(), io::ErrorKind::TimedOut);

        let cases: [(ServeError, io::ErrorKind); 4] = [
            (
                ServeError::ChecksumMismatch {
                    expected: 1,
                    actual: 2,
                },
                io::ErrorKind::InvalidData,
            ),
            (
                ServeError::Truncated { needed: 4, got: 0 },
                io::ErrorKind::UnexpectedEof,
            ),
            (
                ServeError::UnsupportedVersion(9),
                io::ErrorKind::Unsupported,
            ),
            (
                ServeError::Remote {
                    code: 3,
                    message: "boom".into(),
                },
                io::ErrorKind::Other,
            ),
        ];
        for (err, kind) in cases {
            let io: io::Error = err.into();
            assert_eq!(io.kind(), kind, "{io}");
            // The structured error survives as the source.
            assert!(io.get_ref().map(|s| s.is::<ServeError>()).unwrap_or(false));
        }
    }

    #[test]
    fn transient_classification_matches_the_retry_contract() {
        assert!(ServeError::Io(io::Error::new(io::ErrorKind::TimedOut, "t")).is_transient());
        assert!(ServeError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "r")).is_transient());
        assert!(ServeError::Truncated { needed: 1, got: 0 }.is_transient());
        assert!(ServeError::ChecksumMismatch {
            expected: 1,
            actual: 2
        }
        .is_transient());
        assert!(!ServeError::UnsupportedVersion(2).is_transient());
        assert!(!ServeError::Remote {
            code: crate::protocol::ERR_NO_SUCH_FRAME,
            message: "gone".into()
        }
        .is_transient());
        assert!(ServeError::Remote {
            code: crate::protocol::ERR_BUSY,
            message: "shed".into()
        }
        .is_transient());
        // Permission-style local errors are fatal.
        assert!(
            !ServeError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "p")).is_transient()
        );
    }
}
