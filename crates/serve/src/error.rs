//! Structured errors for the frame service.
//!
//! Every failure mode a client or server can hit on the wire — transport
//! errors, framing corruption, protocol violations, and errors the server
//! reports back in-band — is a variant here. Corrupt input must surface as
//! an error, never a panic: the decode paths are written against this
//! enum and the corruption tests in `tests/wire_corruption.rs` hold them
//! to it.

use std::fmt;
use std::io;

/// Anything that can go wrong speaking the accelviz-serve protocol.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying transport error (connect, read, write).
    Io(io::Error),
    /// The stream did not start with the `AVWF` envelope magic.
    BadMagic([u8; 4]),
    /// The peer speaks an envelope version we do not.
    UnsupportedVersion(u16),
    /// The envelope kind byte names no known message.
    UnknownKind(u8),
    /// The envelope checksum did not match the received bytes.
    ChecksumMismatch {
        /// Checksum carried by the envelope.
        expected: u64,
        /// Checksum recomputed over the received bytes.
        actual: u64,
    },
    /// The stream ended mid-envelope.
    Truncated {
        /// Bytes the decoder still needed.
        needed: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// The envelope framed correctly but its payload does not decode.
    Corrupt(String),
    /// The server answered with an in-band error reply.
    Remote {
        /// Machine-readable error code (one of the `ERR_*` constants in
        /// [`crate::protocol`]).
        code: u16,
        /// Human-readable server message.
        message: String,
    },
    /// The peer sent a well-formed message that violates the protocol
    /// state machine (e.g. a response where a request belongs).
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::BadMagic(m) => {
                write!(f, "bad envelope magic {m:?} (expected \"AVWF\")")
            }
            ServeError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            ServeError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02x}"),
            ServeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: envelope says {expected:#018x}, stream hashes to {actual:#018x}"
            ),
            ServeError::Truncated { needed, got } => {
                write!(f, "truncated stream: needed {needed} more bytes, got {got}")
            }
            ServeError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServeError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<ServeError> for io::Error {
    fn from(e: ServeError) -> io::Error {
        match e {
            ServeError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains("checksum"), "{s}");
        assert!(ServeError::BadMagic(*b"HTTP").to_string().contains("AVWF"));
        assert!(ServeError::Remote {
            code: 2,
            message: "no such frame".into()
        }
        .to_string()
        .contains("no such frame"));
    }

    #[test]
    fn io_conversion_roundtrip_preserves_message() {
        let e = ServeError::Truncated { needed: 8, got: 3 };
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
        assert!(io.to_string().contains("truncated"));
    }
}
