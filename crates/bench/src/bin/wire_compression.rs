//! BENCH — AVWF v2 wire compression and the out-of-core store on the
//! Figure 1 workload.
//!
//! Measures, for a developed-halo hybrid frame:
//! - bytes per frame over the v1 (raw) and v2 (compressed) encodings,
//!   and the resulting compression ratio (the issue's acceptance bar is
//!   ≥2x, asserted in full mode);
//! - v2 encode and decode throughput;
//! - modeled remote-transfer time for both encodings over the paper-era
//!   wide-area link (`TransferModel::wide_area`);
//! - cold (disk, checksummed chunk reads) vs warm (resident) fetch
//!   latency through `ResidentRun` under a one-frame budget.
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin wire_compression            # full, writes BENCH_wire.json
//!   cargo run -p accelviz-bench --release --bin wire_compression -- --smoke # small CI workload, no JSON
//!
//! Writes `BENCH_wire.json` into the current directory (full mode only).

use accelviz_bench::workloads;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::remote::TransferModel;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::threshold_for_budget;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_serve::wire::{decode_frame_v2, encode_frame, encode_frame_v2};
use accelviz_store::run::write_run_file;
use accelviz_store::ResidentRun;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

struct Scale {
    particles: usize,
    cells: usize,
    grid: [usize; 3],
    reps: usize,
    store_frames: usize,
}

/// The Figure 1 halo workload at full scale, or a fast CI smoke cut.
fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            particles: 20_000,
            cells: 10,
            grid: [32, 32, 32],
            reps: 3,
            store_frames: 3,
        }
    } else {
        Scale {
            particles: 100_000,
            cells: 40,
            grid: [64, 64, 64],
            reps: 10,
            store_frames: 4,
        }
    }
}

fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let seed = 11u64;

    let snap = workloads::halo_snapshot(s.particles, s.cells, seed);
    let data = partition(&snap.particles, PlotType::X_PX_Y, BuildParams::default());
    let budget = s.particles / 25;
    let threshold = threshold_for_budget(&data, budget);
    let frame = HybridFrame::from_partition(&data, snap.step as usize, threshold, s.grid);
    println!(
        "workload: {} particles, {} halo points, {}^3 grid",
        s.particles,
        frame.points.len(),
        s.grid[0]
    );

    // Bytes per frame, both encodings.
    let raw = encode_frame(&frame);
    let (wire, raw_len) = encode_frame_v2(&frame);
    assert_eq!(raw.len() as u64, raw_len, "v2 trailer must record v1 size");
    let ratio = raw.len() as f64 / wire.len() as f64;
    println!(
        "v1 frame: {} B   v2 frame: {} B   ratio: {ratio:.2}x",
        raw.len(),
        wire.len()
    );
    let decoded = decode_frame_v2(&wire).expect("own encoding must decode");
    assert_eq!(decoded, frame, "v2 roundtrip must be bit-identical");
    if !smoke {
        assert!(
            ratio >= 2.0,
            "acceptance: fig-1 frame must compress >= 2x, got {ratio:.2}x"
        );
    }

    // Encode / decode throughput over the *decoded* frame size (the
    // bytes the pipeline actually produces and consumes).
    let encode_s = best_of(s.reps, || {
        std::hint::black_box(encode_frame_v2(std::hint::black_box(&frame)));
    });
    let decode_s = best_of(s.reps, || {
        std::hint::black_box(decode_frame_v2(std::hint::black_box(&wire)).unwrap());
    });
    let mib = raw.len() as f64 / (1024.0 * 1024.0);
    println!(
        "v2 encode: {:.1} MiB/s   v2 decode: {:.1} MiB/s",
        mib / encode_s,
        mib / decode_s
    );

    // What compression buys on the paper's remote link.
    let wan = TransferModel::wide_area();
    let (t_raw, t_wire) = (
        wan.seconds_for(raw.len() as u64),
        wan.seconds_for(wire.len() as u64),
    );
    println!("wide-area transfer: {t_raw:.3}s raw -> {t_wire:.3}s compressed");

    // Cold vs warm fetch through the residency layer: a multi-frame run
    // under a one-frame budget, alternating frames so every cold fetch
    // pays the full checksummed chunk-read path.
    let frames: Vec<PartitionedData> = (0..s.store_frames)
        .map(|i| {
            let snap =
                workloads::halo_snapshot(s.particles / s.store_frames, s.cells, seed + i as u64);
            partition(&snap.particles, PlotType::X_PX_Y, BuildParams::default())
        })
        .collect();
    let path = std::env::temp_dir().join(format!("accelviz-bench-wire-{}", std::process::id()));
    write_run_file(&path, &frames, accelviz_store::DEFAULT_CHUNK_BYTES).unwrap();
    let frame_bytes = frames[0].particles().len() as u64 * 48;
    let run = Arc::new(ResidentRun::open(&path, frame_bytes).unwrap());

    let cold_s = best_of(s.reps, || {
        // Ping-pong between two frames under a one-frame budget: every
        // fetch evicts the other, so both loads are cold.
        run.fetch(0).unwrap();
        run.fetch(1).unwrap();
    }) / 2.0;
    run.fetch(0).unwrap();
    let warm_s = best_of(s.reps, || {
        run.fetch(0).unwrap();
    });
    let rs = run.stats();
    println!(
        "store fetch ({}): cold {:.1} us, warm {:.2} us ({} cold loads, {} evictions)",
        if run.is_mapped() { "mmap" } else { "pread" },
        cold_s * 1e6,
        warm_s * 1e6,
        rs.cold_loads,
        rs.evictions
    );
    assert!(rs.evictions > 0, "the one-frame budget must force paging");
    let _ = std::fs::remove_file(&path);

    if smoke {
        println!("smoke mode: skipping BENCH_wire.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"wire_compression\",\n  \"workload\": {{\"figure\": 1, \"particles\": {}, \"cells\": {}, \"seed\": {seed}, \"point_budget\": {budget}, \"grid\": [{}, {}, {}], \"halo_points\": {}}},\n  \"v1_frame_bytes\": {},\n  \"v2_frame_bytes\": {},\n  \"compression_ratio\": {ratio:.3},\n  \"encode_mib_s\": {:.1},\n  \"decode_mib_s\": {:.1},\n  \"wide_area_raw_s\": {t_raw:.4},\n  \"wide_area_v2_s\": {t_wire:.4},\n  \"store\": {{\"backend\": \"{}\", \"cold_fetch_us\": {:.1}, \"warm_fetch_us\": {:.2}, \"frame_bytes\": {frame_bytes}}}\n}}\n",
        s.particles,
        s.cells,
        s.grid[0],
        s.grid[1],
        s.grid[2],
        frame.points.len(),
        raw.len(),
        wire.len(),
        mib / encode_s,
        mib / decode_s,
        if run.is_mapped() { "mmap" } else { "pread" },
        cold_s * 1e6,
        warm_s * 1e6,
    );
    let path = "BENCH_wire.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
    let _ = accelviz_trace::flush();
}
