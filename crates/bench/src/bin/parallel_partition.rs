//! BENCH — serial vs parallel partitioning across pool sizes.
//!
//! The pool size is fixed per process (the global pool reads
//! `RAYON_NUM_THREADS` once), so this harness re-executes itself as a
//! child per thread count: 1, 2, and the machine's full parallelism.
//! Every run digests its output store; the digests must match each other
//! and the serial build bit for bit, so the speedup numbers are only
//! reported for provably identical results.
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin parallel_partition
//!
//! Writes `BENCH_parallel_partition.json` into the current directory.

use accelviz_bench::workloads;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use std::io::Write;
use std::time::Instant;

/// The Figure 2 partitioning workload: one developed-halo time step at
/// 50k particles, depth-6 / capacity-256 build (same as `experiments`).
const N_PARTICLES: usize = 50_000;
const CELLS: usize = 40;
const SEED: u64 = 11;
const REPS: usize = 3;

fn params() -> BuildParams {
    BuildParams {
        max_depth: 6,
        leaf_capacity: 256,
        gradient_refinement: None,
    }
}

fn fnv1a64(digest: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *digest ^= byte as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Order-sensitive digest of the whole store: particle file bits, sorted
/// leaf (density, len) sequence, node count.
fn digest_store(data: &PartitionedData) -> u64 {
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for p in data.particles() {
        for v in p.to_array() {
            fnv1a64(&mut d, v.to_bits());
        }
    }
    for &li in data.sorted_leaves() {
        let n = &data.tree().nodes[li as usize];
        fnv1a64(&mut d, n.density.to_bits());
        fnv1a64(&mut d, n.len);
    }
    fnv1a64(&mut d, data.tree().nodes.len() as u64);
    d
}

fn best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

/// One measured process: times both builds at the inherited pool size and
/// prints machine-readable `key=value` lines.
fn child() {
    let snap = workloads::halo_snapshot(N_PARTICLES, CELLS, SEED);
    let (serial_s, serial) = best_of(REPS, || partition(&snap.particles, PlotType::XYZ, params()));
    let (parallel_s, par) = best_of(REPS, || {
        partition_parallel(&snap.particles, PlotType::XYZ, params())
    });
    println!("threads={}", rayon::current_num_threads());
    println!("serial_s={serial_s:.6}");
    println!("parallel_s={parallel_s:.6}");
    println!("serial_digest={:016x}", digest_store(&serial));
    println!("parallel_digest={:016x}", digest_store(&par));
    println!("nodes={}", par.tree().nodes.len());
    // With ACCELVIZ_TRACE set, each child writes the trace artifact in
    // turn; children run sequentially, so the last one (the full-core
    // run) is what ends up next to BENCH_parallel_partition.json.
    let _ = accelviz_trace::flush();
}

struct Run {
    threads: usize,
    serial_s: f64,
    parallel_s: f64,
    serial_digest: String,
    parallel_digest: String,
    nodes: u64,
}

fn parse_child(out: &str) -> Run {
    let get = |key: &str| -> &str {
        out.lines()
            .find_map(|l| l.strip_prefix(key).and_then(|l| l.strip_prefix('=')))
            .unwrap_or_else(|| panic!("child output missing {key}: {out}"))
    };
    Run {
        threads: get("threads").parse().expect("threads"),
        serial_s: get("serial_s").parse().expect("serial_s"),
        parallel_s: get("parallel_s").parse().expect("parallel_s"),
        serial_digest: get("serial_digest").to_string(),
        parallel_digest: get("parallel_digest").to_string(),
        nodes: get("nodes").parse().expect("nodes"),
    }
}

fn parent() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let exe = std::env::current_exe().expect("current_exe");
    let mut runs = Vec::new();
    for &t in &thread_counts {
        let out = std::process::Command::new(&exe)
            .arg("--child")
            .env("RAYON_NUM_THREADS", t.to_string())
            .output()
            .expect("spawn child");
        assert!(
            out.status.success(),
            "child at {t} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let run = parse_child(&String::from_utf8_lossy(&out.stdout));
        assert_eq!(run.threads, t, "child did not honor RAYON_NUM_THREADS");
        println!(
            "threads={:2}  serial={:.3}s  parallel={:.3}s  speedup={:.2}x  digest={}",
            run.threads,
            run.serial_s,
            run.parallel_s,
            run.serial_s / run.parallel_s,
            run.parallel_digest,
        );
        runs.push(run);
    }

    // Bit-identical across every pool size, and vs the serial build.
    let reference = &runs[0].serial_digest;
    for run in &runs {
        assert_eq!(
            &run.serial_digest, reference,
            "serial build must be reproducible"
        );
        assert_eq!(
            &run.parallel_digest, reference,
            "parallel store at {} threads diverged from serial",
            run.threads
        );
    }
    println!("all digests identical: {reference}");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_partition\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"figure\": 2, \"particles\": {N_PARTICLES}, \"cells\": {CELLS}, \"seed\": {SEED}, \"max_depth\": 6, \"leaf_capacity\": 256}},\n"
    ));
    json.push_str(&format!("  \"machine_cores\": {cores},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"store_digest\": \"{reference}\",\n"));
    json.push_str(&format!("  \"nodes\": {},\n", runs[0].nodes));
    json.push_str("  \"digests_match\": true,\n");
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup_vs_serial\": {:.3}}}{}\n",
            run.threads,
            run.serial_s,
            run.parallel_s,
            run.serial_s / run.parallel_s,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_parallel_partition.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
}

fn main() {
    if std::env::args().any(|a| a == "--child") {
        child();
    } else {
        parent();
    }
}
