//! BENCH — progressive (LOD) streaming on the Figure 1 workload.
//!
//! Measures, for a developed-halo hybrid frame served over loopback TCP:
//! - the chunk plan at the default budget: record count, first-chunk
//!   bytes, and the first chunk as a fraction of the full v2 wire frame
//!   (the issue's acceptance bar is < 25%, asserted in full mode);
//! - time-to-first-chunk over a real socket versus time to drain the
//!   whole refinement stream, and versus a plain full fetch;
//! - client-side assembly throughput (accept + splice for every record,
//!   including the trailer re-encode check).
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin lod_stream             # full, writes BENCH_lod.json
//!   cargo run -p accelviz-bench --release --bin lod_stream -- --smoke  # small CI workload, no JSON
//!
//! Writes `BENCH_lod.json` into the current directory (full mode only).

use accelviz_bench::workloads;
use accelviz_core::hybrid::HybridFrame;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::threshold_for_budget;
use accelviz_octree::plots::PlotType;
use accelviz_serve::lod::{plan_frame_chunks, ProgressiveAssembler, DEFAULT_CHUNK_BYTES};
use accelviz_serve::protocol::{
    read_chunk_reply, read_response, write_request, ChunkReply, Request,
};
use accelviz_serve::wire::encode_frame_v2;
use accelviz_serve::{Client, FrameServer, ServerConfig};
use std::io::Write;
use std::time::Instant;

struct Scale {
    particles: usize,
    cells: usize,
    grid: [usize; 3],
    reps: usize,
}

/// The Figure 1 halo workload at full scale, or a fast CI smoke cut.
fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            particles: 20_000,
            cells: 10,
            grid: [32, 32, 32],
            reps: 3,
        }
    } else {
        Scale {
            particles: 100_000,
            cells: 40,
            grid: [64, 64, 64],
            reps: 10,
        }
    }
}

fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let seed = 11u64;

    let snap = workloads::halo_snapshot(s.particles, s.cells, seed);
    let data = partition(&snap.particles, PlotType::X_PX_Y, BuildParams::default());
    let budget = s.particles / 25;
    let threshold = threshold_for_budget(&data, budget);
    // Index 0, matching the store position it is served from below.
    let frame = HybridFrame::from_partition(&data, 0, threshold, s.grid);
    println!(
        "workload: {} particles, {} halo points, {}^3 grid",
        s.particles,
        frame.points.len(),
        s.grid[0]
    );

    // The chunk plan at the server's default budget, against the full v2
    // wire frame a plain fetch would ship.
    let records = plan_frame_chunks(&frame, DEFAULT_CHUNK_BYTES);
    let (full_wire, _) = encode_frame_v2(&frame);
    let first = records[0].len();
    let fraction = first as f64 / full_wire.len() as f64;
    println!(
        "plan: {} records at {} KiB budget; first chunk {} B = {:.1}% of the {} B full v2 frame",
        records.len(),
        DEFAULT_CHUNK_BYTES / 1024,
        first,
        100.0 * fraction,
        full_wire.len()
    );
    if !smoke {
        assert!(
            fraction < 0.25,
            "acceptance: first chunk must be < 25% of the full wire frame, got {:.1}%",
            100.0 * fraction
        );
    }

    // Client-side assembly throughput over the whole record stream.
    let assemble_s = best_of(s.reps, || {
        let mut asm = ProgressiveAssembler::new();
        for record in &records {
            std::hint::black_box(asm.accept(record).expect("record applies"));
        }
    });
    let stream_bytes: usize = records.iter().map(Vec::len).sum();
    let mib = stream_bytes as f64 / (1024.0 * 1024.0);
    println!(
        "assembly: {:.1} MiB/s over {} records ({:.2} MiB stream)",
        mib / assemble_s,
        records.len(),
        mib
    );

    // Measured over loopback TCP: time to the first renderable chunk vs
    // time to full refinement vs a plain full fetch. The raw-socket
    // session lets us timestamp the first chunk's arrival, which
    // `Client::fetch_progressive` folds into its total.
    let server = FrameServer::spawn_loopback(
        vec![data],
        ServerConfig {
            volume_dims: s.grid,
            ..Default::default()
        },
    )
    .expect("loopback bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_request(&mut stream, &Request::Hello { version: 2 }).expect("hello");
    let _ = read_response(&mut stream).expect("hello ack");

    let mut first_chunk_s = f64::INFINITY;
    let mut drain_s = f64::INFINITY;
    for _ in 0..s.reps {
        let t0 = Instant::now();
        write_request(
            &mut stream,
            &Request::RequestFrameProgressive {
                frame: 0,
                threshold,
                chunk_bytes: DEFAULT_CHUNK_BYTES,
            },
        )
        .expect("request");
        let mut asm = ProgressiveAssembler::new();
        let mut t_first = None;
        loop {
            let (reply, _) = read_chunk_reply(&mut stream).expect("chunk");
            let record = match reply {
                ChunkReply::Chunk(record) => record,
                ChunkReply::Error { code, message } => panic!("server error {code}: {message}"),
            };
            let done = asm.accept(&record).expect("record applies");
            t_first.get_or_insert_with(|| t0.elapsed().as_secs_f64());
            if done {
                break;
            }
        }
        let refined = asm.into_frame().expect("complete");
        assert_eq!(refined, frame, "refined frame must be bit-identical");
        first_chunk_s = first_chunk_s.min(t_first.unwrap());
        drain_s = drain_s.min(t0.elapsed().as_secs_f64());
    }
    drop(stream);

    let mut client = Client::connect(server.addr()).expect("connect");
    let full_fetch_s = best_of(s.reps, || {
        let (f, _) = client.fetch(0, threshold).expect("full fetch");
        assert_eq!(f, frame);
    });
    println!(
        "loopback: first chunk {:.2} ms, full refinement {:.2} ms, plain fetch {:.2} ms",
        first_chunk_s * 1e3,
        drain_s * 1e3,
        full_fetch_s * 1e3
    );
    server.shutdown();

    if smoke {
        println!("smoke mode: skipping BENCH_lod.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"lod_stream\",\n  \"workload\": {{\"figure\": 1, \"particles\": {}, \"cells\": {}, \"seed\": {seed}, \"point_budget\": {budget}, \"grid\": [{}, {}, {}], \"halo_points\": {}}},\n  \"chunk_budget_bytes\": {},\n  \"records\": {},\n  \"first_chunk_bytes\": {first},\n  \"full_v2_wire_bytes\": {},\n  \"first_chunk_fraction\": {fraction:.4},\n  \"assembly_mib_s\": {:.1},\n  \"first_chunk_ms\": {:.3},\n  \"full_refinement_ms\": {:.3},\n  \"plain_fetch_ms\": {:.3}\n}}\n",
        s.particles,
        s.cells,
        s.grid[0],
        s.grid[1],
        s.grid[2],
        frame.points.len(),
        DEFAULT_CHUNK_BYTES,
        records.len(),
        full_wire.len(),
        mib / assemble_s,
        first_chunk_s * 1e3,
        drain_s * 1e3,
        full_fetch_s * 1e3,
    );
    let path = "BENCH_lod.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
    let _ = accelviz_trace::flush();
}
