//! Regenerates the paper's figures and in-text measurements.
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin experiments -- all
//!   cargo run -p accelviz-bench --release --bin experiments -- fig1 fig6

use accelviz_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| match name {
        "fig1" => experiments::fig1(100_000),
        "fig2" => experiments::fig2(50_000),
        "fig3" => experiments::fig3(),
        "fig4" => experiments::fig4(30_000),
        "fig5" => experiments::fig5(20_000, 60),
        "prep" => experiments::prep(),
        "size" => experiments::size(100_000),
        "fig6" => experiments::fig6(14, 250),
        "fig7" => experiments::fig7(14, 300),
        "fig8" => experiments::fig8(12),
        "fig9" => experiments::fig9(14),
        "compr" => experiments::compr(14, 250),
        "fig10" => experiments::fig10(14, 250),
        "volsweep" => experiments::volume_resolution_sweep(50_000),
        "ablate" => experiments::ablate(100_000),
        "anim" => experiments::anim(14, 8, 400),
        "all" => experiments::run_all(),
        other => eprintln!(
            "unknown experiment '{other}'; available: fig1 fig2 fig3 fig4 fig5 \
             prep size fig6 fig7 fig8 fig9 compr fig10 volsweep ablate anim all"
        ),
    };
    if args.is_empty() {
        run("all");
    } else {
        for a in &args {
            run(a);
        }
    }
    // With ACCELVIZ_TRACE set, the experiment run leaves a Chrome trace
    // artifact next to the BENCH_*.json files.
    if let Ok(Some(path)) = accelviz_trace::flush() {
        println!("wrote pipeline trace to {}", path.display());
    }
}
