//! BENCH — frame-service concurrency: clients served per second at
//! rising fan-in, for both connection backends.
//!
//! Each "client session" is the full remote-viewer handshake a fresh
//! viewer pays: connect, `Hello`, fetch one hybrid frame, disconnect.
//! For every backend ({threaded, reactor}) and every fan-in
//! N ∈ {8, 64, 256}, the bench launches N sessions simultaneously and
//! reports N divided by the wall time for all of them to finish —
//! sessions per second at that concurrency.
//!
//! The JSON rows carry the retry totals alongside the rates: zero
//! retries means the wall time is pure service time. On a single-core
//! box (like the reference container) wall times at high fan-in are
//! dominated by OS scheduling of the N client threads the bench itself
//! spawns, so expect large run-to-run variance there; the numbers are
//! comparable *between backends within one run*, not across machines.
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin concurrent_clients            # full, writes BENCH_concurrency.json
//!   cargo run -p accelviz-bench --release --bin concurrent_clients -- --smoke # small CI workload, no JSON
//!
//! Writes `BENCH_concurrency.json` into the current directory (full mode
//! only).

use accelviz_beam::distribution::Distribution;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_serve::{Client, ClientConfig, FrameServer, RetryPolicy, ServeBackend, ServerConfig};
use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Scale {
    particles: usize,
    fan_ins: Vec<usize>,
    reps: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            particles: 5_000,
            fan_ins: vec![8, 32],
            reps: 1,
        }
    } else {
        Scale {
            particles: 20_000,
            fan_ins: vec![8, 64, 256],
            reps: 3,
        }
    }
}

fn store(particles: usize) -> Vec<PartitionedData> {
    let ps = Distribution::default_beam().sample(particles, 7);
    vec![partition(&ps, PlotType::XYZ, BuildParams::default())]
}

fn backends() -> Vec<(&'static str, ServeBackend)> {
    if cfg!(unix) {
        vec![
            ("threaded", ServeBackend::Threaded),
            ("reactor", ServeBackend::Reactor),
        ]
    } else {
        vec![("threaded", ServeBackend::Threaded)]
    }
}

/// Runs `n` simultaneous sessions against `server`; returns the wall
/// seconds from the starting gun to the last session's disconnect, plus
/// the total retries the sessions burned (nonzero retries mean the wall
/// time includes backoff sleeps, not just service time).
fn storm(server: &FrameServer, n: usize) -> (f64, u64) {
    let gun = Arc::new(Barrier::new(n + 1));
    let addr = server.addr();
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let gun = Arc::clone(&gun);
            std::thread::spawn(move || {
                // Retry-enabled so a transient accept-queue hiccup at
                // high fan-in is absorbed instead of failing the run.
                let config = ClientConfig {
                    retry: Some(RetryPolicy::fast(1000 + i as u64)),
                    ..ClientConfig::default()
                };
                gun.wait();
                let mut client = Client::connect_with(addr, config).expect("session connect");
                let (frame, _) = client.fetch(0, f64::INFINITY).expect("session fetch");
                assert_eq!(frame.step, 0);
                client.client_stats().retries
            })
        })
        .collect();
    gun.wait();
    let t0 = Instant::now();
    let mut retries = 0;
    for handle in clients {
        retries += handle.join().expect("client session must not panic");
    }
    (t0.elapsed().as_secs_f64(), retries)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let data = store(s.particles);
    println!(
        "workload: {} particles, 1 frame, fan-ins {:?}",
        s.particles, s.fan_ins
    );

    let mut rows = Vec::new();
    for (name, backend) in backends() {
        let config = ServerConfig {
            backend,
            worker_threads: 4,
            max_connections: 512,
            ..ServerConfig::default()
        };
        let server = FrameServer::spawn_loopback(data.clone(), config).unwrap();
        assert_eq!(server.backend(), backend);
        // Warm the extraction cache so the bench measures the service
        // path, not one extraction amortized across every session.
        let mut warm = Client::connect(server.addr()).unwrap();
        warm.fetch(0, f64::INFINITY).unwrap();
        drop(warm);

        for &n in &s.fan_ins {
            let mut best = f64::INFINITY;
            let mut retries = 0;
            for _ in 0..s.reps {
                let (wall, r) = storm(&server, n);
                best = best.min(wall);
                retries += r;
            }
            let rate = n as f64 / best;
            println!(
                "{name:>8}  N={n:<4} {rate:>9.0} sessions/s  ({best:.3}s wall, {retries} retries)"
            );
            rows.push(format!(
                "    {{\"backend\": \"{name}\", \"clients\": {n}, \"sessions_per_sec\": {rate:.1}, \"wall_s\": {best:.4}, \"retries\": {retries}}}"
            ));
        }
        server.shutdown();
    }

    if smoke {
        println!("smoke mode: skipping BENCH_concurrency.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"concurrent_clients\",\n  \"workload\": {{\"particles\": {}, \"frames\": 1, \"worker_threads\": 4}},\n  \"sessions\": [\n{}\n  ]\n}}\n",
        s.particles,
        rows.join(",\n")
    );
    let path = "BENCH_concurrency.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
    let _ = accelviz_trace::flush();
}
