//! BENCH — sharded frame service: sessions per second through one
//! router at 1, 2, and 4 shards, plus the thundering-herd collapse
//! ratio the router's coalescing cache buys.
//!
//! Each "client session" is the full remote-viewer handshake a fresh
//! viewer pays against the router: connect, `Hello`, fetch one hybrid
//! frame, disconnect. Sessions spread their requests round-robin across
//! the catalog so every shard sees traffic. The router serves warmed
//! frames from its own cache, so the shard counts measure the router's
//! front-door throughput — on a single box all shards share the same
//! cores, so expect *parity* across shard counts rather than speedup;
//! the bench exists to show the router adds no cliff, and to record the
//! numbers a real multi-host deployment would compare against. As with
//! `concurrent_clients`, wall times on a small shared box are dominated
//! by OS scheduling of ~2N threads and can swing 10x run to run;
//! compare rows within one run, not across machines or runs.
//!
//! The herd row is the router's reason to exist: H cold clients all
//! requesting the same frame of a 2-shard service collapse to exactly
//! one upstream extraction (`collapse_ratio` = H / upstream fetches —
//! counter-measured, not inferred).
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin shard_throughput            # full, writes BENCH_shard.json
//!   cargo run -p accelviz-bench --release --bin shard_throughput -- --smoke # small CI workload, no JSON
//!
//! Writes `BENCH_shard.json` into the current directory (full mode only).

use accelviz_beam::distribution::Distribution;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_serve::router::CTR_ROUTER_UPSTREAM_FETCHES;
use accelviz_serve::{
    Client, ClientConfig, RetryPolicy, RouterConfig, ServerConfig, ShardedFrameService,
};
use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Scale {
    particles: usize,
    frames: usize,
    storm_clients: usize,
    herd_clients: usize,
    reps: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            particles: 5_000,
            frames: 4,
            storm_clients: 16,
            herd_clients: 16,
            reps: 1,
        }
    } else {
        Scale {
            particles: 20_000,
            frames: 8,
            storm_clients: 96,
            herd_clients: 64,
            reps: 3,
        }
    }
}

fn stores(frames: usize, particles: usize) -> Vec<PartitionedData> {
    (0..frames)
        .map(|i| {
            let ps = Distribution::default_beam().sample(particles, i as u64 + 7);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn service(data: &[PartitionedData], shards: usize) -> ShardedFrameService {
    let shard_config = ServerConfig {
        max_connections: 64,
        ..ServerConfig::default()
    };
    let router_config = RouterConfig {
        max_connections: 512,
        ..RouterConfig::default()
    };
    ShardedFrameService::spawn_loopback(data.to_vec(), shards, shard_config, router_config)
        .expect("spawn sharded service")
}

/// Runs `n` simultaneous sessions against the router, session `i`
/// fetching frame `i % frames`; returns wall seconds from the starting
/// gun to the last disconnect, plus total client retries burned.
fn storm(service: &ShardedFrameService, n: usize, frames: usize) -> (f64, u64) {
    let gun = Arc::new(Barrier::new(n + 1));
    let addr = service.addr();
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let gun = Arc::clone(&gun);
            let frame = (i % frames) as u32;
            std::thread::spawn(move || {
                let config = ClientConfig {
                    retry: Some(RetryPolicy::fast(3000 + i as u64)),
                    ..ClientConfig::default()
                };
                gun.wait();
                let mut client = Client::connect_with(addr, config).expect("session connect");
                let (got, _) = client.fetch(frame, f64::INFINITY).expect("session fetch");
                assert_eq!(got.step, frame as usize);
                client.client_stats().retries
            })
        })
        .collect();
    gun.wait();
    let t0 = Instant::now();
    let mut retries = 0;
    for handle in clients {
        retries += handle.join().expect("client session must not panic");
    }
    (t0.elapsed().as_secs_f64(), retries)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let data = stores(s.frames, s.particles);
    println!(
        "workload: {} particles x {} frames, {} sessions/storm",
        s.particles, s.frames, s.storm_clients
    );

    // Sessions/sec at rising shard counts, through one router.
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let svc = service(&data, shards);
        // Warm every frame through the router so the storm measures the
        // service path, not first-touch extraction.
        let mut warm = Client::connect(svc.addr()).expect("warm connect");
        for f in 0..s.frames as u32 {
            warm.fetch(f, f64::INFINITY).expect("warm fetch");
        }
        drop(warm);

        let mut best = f64::INFINITY;
        let mut retries = 0;
        for _ in 0..s.reps {
            let (wall, r) = storm(&svc, s.storm_clients, s.frames);
            best = best.min(wall);
            retries += r;
        }
        let rate = s.storm_clients as f64 / best;
        println!(
            "shards={shards}  N={:<4} {rate:>9.0} sessions/s  ({best:.3}s wall, {retries} retries)",
            s.storm_clients
        );
        rows.push(format!(
            "    {{\"shards\": {shards}, \"clients\": {}, \"sessions_per_sec\": {rate:.1}, \"wall_s\": {best:.4}, \"retries\": {retries}}}",
            s.storm_clients
        ));
        svc.shutdown();
    }

    // Herd collapse: H cold clients, one frame, 2 shards. The router
    // must pay exactly one upstream extraction for the whole herd.
    let svc = service(&data, 2);
    let h = s.herd_clients;
    let gun = Arc::new(Barrier::new(h + 1));
    let addr = svc.addr();
    let herd: Vec<_> = (0..h)
        .map(|i| {
            let gun = Arc::clone(&gun);
            std::thread::spawn(move || {
                let config = ClientConfig {
                    retry: Some(RetryPolicy::fast(9000 + i as u64)),
                    ..ClientConfig::default()
                };
                gun.wait();
                let mut client = Client::connect_with(addr, config).expect("herd connect");
                client.fetch(0, f64::INFINITY).expect("herd fetch");
            })
        })
        .collect();
    gun.wait();
    let t0 = Instant::now();
    for handle in herd {
        handle.join().expect("herd client must not panic");
    }
    let herd_wall = t0.elapsed().as_secs_f64();
    let upstream = svc.router().metrics().counter(CTR_ROUTER_UPSTREAM_FETCHES);
    assert!(upstream >= 1, "the herd must reach at least one shard");
    let collapse = h as f64 / upstream as f64;
    println!(
        "herd      H={h:<4} upstream_fetches={upstream}  collapse_ratio={collapse:.1}  ({herd_wall:.3}s wall)"
    );
    svc.shutdown();

    if smoke {
        println!("smoke mode: skipping BENCH_shard.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"workload\": {{\"particles\": {}, \"frames\": {}, \"storm_clients\": {}}},\n  \"sessions\": [\n{}\n  ],\n  \"herd\": {{\"clients\": {h}, \"upstream_fetches\": {upstream}, \"collapse_ratio\": {collapse:.1}, \"wall_s\": {herd_wall:.4}}}\n}}\n",
        s.particles,
        s.frames,
        s.storm_clients,
        rows.join(",\n")
    );
    let path = "BENCH_shard.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
    let _ = accelviz_trace::flush();
}
