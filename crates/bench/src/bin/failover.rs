//! BENCH — self-healing shard serving: what a shard kill actually costs
//! a live session, at replication 1 versus 2.
//!
//! Three operational numbers per replication factor, all measured
//! against a 3-shard loopback service with a hair-trigger breaker and a
//! fast background prober:
//!
//! - `time_to_eject_ms` — wall time from the kill until the victim's
//!   circuit breaker is Open (the prober and in-flight traffic racing
//!   to discover the death). After this point requests stop paying the
//!   upstream retry budget.
//! - `availability_during_kill` — fraction of requests answered with a
//!   genuine frame while the shard stays dead. Replication 2 should
//!   hold this at 1.0 (every frame has a live replica); replication 1
//!   drops to roughly the surviving shards' share of the catalog.
//! - `time_to_reinstate_ms` — wall time from the reinstate call (shard
//!   respawned, router repointed, breaker reset) until a frame whose
//!   primary is the revived shard is served genuinely again.
//!
//! As with the other serve benches, wall times on a small shared box
//! swing with OS scheduling; compare replication rows within one run.
//!
//! Usage:
//!   cargo run -p accelviz-bench --release --bin failover            # full, writes BENCH_failover.json
//!   cargo run -p accelviz-bench --release --bin failover -- --smoke # small CI workload, no JSON
//!
//! Writes `BENCH_failover.json` into the current directory (full mode
//! only).

use accelviz_beam::distribution::Distribution;
use accelviz_core::shard::ShardSpec;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_serve::router::{CTR_ROUTER_BREAKER_FAST_FAILS, CTR_ROUTER_REPLICA_FAILOVERS};
use accelviz_serve::{
    BreakerConfig, BreakerState, Client, ClientConfig, HealthConfig, RetryPolicy, RouterConfig,
    ServerConfig, ShardedFrameService,
};
use std::io::Write;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;

struct Scale {
    particles: usize,
    frames: usize,
    /// How long requests keep flowing against the dead shard.
    kill_window: Duration,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            particles: 5_000,
            frames: 6,
            kill_window: Duration::from_millis(400),
        }
    } else {
        Scale {
            particles: 20_000,
            frames: 10,
            kill_window: Duration::from_secs(2),
        }
    }
}

fn stores(frames: usize, particles: usize) -> Vec<PartitionedData> {
    (0..frames)
        .map(|i| {
            let ps = Distribution::default_beam().sample(particles, i as u64 + 7);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn service(data: &[PartitionedData], replication: usize, seed: u64) -> ShardedFrameService {
    // A 1-byte router cache so every request pays the upstream hop —
    // availability here must measure the shards, not the router cache.
    let router_config = RouterConfig {
        cache_bytes: 1,
        upstream_retry: Some(RetryPolicy::fast(seed)),
        breaker: BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::from_millis(150),
        },
        health: HealthConfig {
            probe_interval: Duration::from_millis(20),
            probe_timeout: Duration::from_millis(500),
            probe_seed: seed,
            ..HealthConfig::default()
        },
        ..RouterConfig::default()
    };
    ShardedFrameService::spawn_loopback_replicated(
        data.to_vec(),
        SHARDS,
        replication,
        ServerConfig::default(),
        router_config,
    )
    .expect("spawn replicated service")
}

struct Row {
    replication: usize,
    time_to_eject_ms: f64,
    availability: f64,
    requests: u64,
    genuine: u64,
    time_to_reinstate_ms: f64,
    fast_fails: u64,
    failovers: u64,
}

fn run(data: &[PartitionedData], replication: usize, s: &Scale) -> Row {
    let mut svc = service(data, replication, 40 + replication as u64);
    let spec = ShardSpec::new(SHARDS);
    let victim = spec.owner_of(0);
    let victim_frame = (0..s.frames as u32)
        .find(|&f| spec.owner_of(f) == victim)
        .expect("the victim primary-owns frame 0 by construction");
    let mut client = Client::connect_with(svc.addr(), ClientConfig::no_retry()).expect("connect");

    // Fault-free pass: everything must serve.
    for f in 0..s.frames as u32 {
        client.fetch(f, f64::INFINITY).expect("healthy fetch");
    }

    // Kill, then watch the prober discover the death: with no client
    // traffic at all, the breaker trip is pure detection latency.
    svc.kill_shard(victim);
    let t_kill = Instant::now();
    let ejected = loop {
        if svc.router().breaker_state(victim) == BreakerState::Open {
            break t_kill.elapsed();
        }
        if t_kill.elapsed() > Duration::from_secs(10) {
            panic!("prober never tripped the breaker for shard {victim}");
        }
        std::thread::sleep(Duration::from_millis(1));
    };

    // Availability while the shard stays dead: round-robin the whole
    // catalog for the window and count genuine replies. Victim-primary
    // frames either fail over (replication >= 2) or fast-fail to the
    // degraded path — punctuated by a full-price retry whenever the
    // breaker's cooldown lapses into a half-open trial.
    let (mut requests, mut genuine) = (0u64, 0u64);
    let mut f = 0u32;
    let t_window = Instant::now();
    while t_window.elapsed() < s.kill_window {
        requests += 1;
        if client.fetch(f, f64::INFINITY).is_ok() {
            genuine += 1;
        }
        f = (f + 1) % s.frames as u32;
    }

    // Reinstate and time the road back to a genuine frame from the
    // revived shard's own slice.
    svc.reinstate_shard(victim).expect("reinstate");
    let t_back = Instant::now();
    let reinstated = loop {
        if client.fetch(victim_frame, f64::INFINITY).is_ok() {
            break t_back.elapsed();
        }
        if t_back.elapsed() > Duration::from_secs(30) {
            panic!("revived shard never served frame {victim_frame} again");
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    let rm = svc.router().metrics();
    let row = Row {
        replication,
        time_to_eject_ms: ejected.as_secs_f64() * 1e3,
        availability: genuine as f64 / requests as f64,
        requests,
        genuine,
        time_to_reinstate_ms: reinstated.as_secs_f64() * 1e3,
        fast_fails: rm.counter(CTR_ROUTER_BREAKER_FAST_FAILS),
        failovers: rm.counter(CTR_ROUTER_REPLICA_FAILOVERS),
    };
    drop(client);
    svc.shutdown();
    row
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let data = stores(s.frames, s.particles);
    println!(
        "workload: {} particles x {} frames over {SHARDS} shards, {:?} kill window",
        s.particles, s.frames, s.kill_window
    );

    let mut rows = Vec::new();
    for replication in [1usize, 2] {
        let row = run(&data, replication, &s);
        println!(
            "replication={}  eject={:>7.1}ms  availability={:.3} ({}/{})  reinstate={:>7.1}ms  fast_fails={} failovers={}",
            row.replication,
            row.time_to_eject_ms,
            row.availability,
            row.genuine,
            row.requests,
            row.time_to_reinstate_ms,
            row.fast_fails,
            row.failovers,
        );
        // The headline claims, asserted so CI smoke runs catch a
        // regression rather than just printing one.
        if row.replication >= 2 {
            assert_eq!(
                row.genuine, row.requests,
                "replication 2 must hold availability at 1.0 through the kill"
            );
        } else {
            assert!(
                row.genuine < row.requests,
                "replication 1 should lose the victim's share of the catalog"
            );
        }
        rows.push(format!(
            "    {{\"replication\": {}, \"time_to_eject_ms\": {:.2}, \"availability_during_kill\": {:.4}, \"requests\": {}, \"genuine\": {}, \"time_to_reinstate_ms\": {:.2}, \"breaker_fast_fails\": {}, \"replica_failovers\": {}}}",
            row.replication,
            row.time_to_eject_ms,
            row.availability,
            row.requests,
            row.genuine,
            row.time_to_reinstate_ms,
            row.fast_fails,
            row.failovers,
        ));
    }

    if smoke {
        println!("smoke mode: skipping BENCH_failover.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"workload\": {{\"particles\": {}, \"frames\": {}, \"shards\": {SHARDS}, \"kill_window_ms\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        s.particles,
        s.frames,
        s.kill_window.as_millis(),
        rows.join(",\n")
    );
    let path = "BENCH_failover.json";
    let mut file = std::fs::File::create(path).expect("create json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
    let _ = accelviz_trace::flush();
}
