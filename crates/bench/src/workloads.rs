//! Shared workload builders used by both the `experiments` binary and the
//! Criterion benches, so every figure is regenerated from the same data.

use accelviz_beam::simulation::{BeamConfig, BeamSimulation, Snapshot};
use accelviz_core::hybrid::HybridFrame;
use accelviz_emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz_emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz_emsim::sample::{FieldKind, FieldSampler, VectorField3};
use accelviz_fieldlines::integrate::TraceParams;
use accelviz_fieldlines::seeding::{seed_lines, SeededLine, SeedingParams};
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::threshold_for_budget;
use accelviz_octree::plots::PlotType;
use accelviz_octree::sorted_store::PartitionedData;
use accelviz_render::camera::Camera;

/// A beam snapshot with a developed halo, at the given particle count.
/// Deterministic in `seed`.
pub fn halo_snapshot(n_particles: usize, cells: usize, seed: u64) -> Snapshot {
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n_particles, seed));
    for _ in 0..32 * cells {
        sim.step();
    }
    sim.snapshot(cells)
}

/// A full recorded time series of the halo study (the Figure 5 workload).
pub fn halo_series(n_particles: usize, recorded_steps: usize, seed: u64) -> Vec<Snapshot> {
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n_particles, seed));
    sim.run(recorded_steps, 8)
}

/// Standard partitioning of a snapshot for a plot type.
pub fn partitioned(snapshot: &Snapshot, plot: PlotType) -> PartitionedData {
    partition(
        &snapshot.particles,
        plot,
        BuildParams {
            max_depth: 6,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
    )
}

/// A hybrid frame with the given point budget and volume resolution.
pub fn hybrid_frame(
    data: &PartitionedData,
    step: usize,
    point_budget: usize,
    volume_dims: [usize; 3],
) -> HybridFrame {
    let threshold = threshold_for_budget(data, point_budget);
    HybridFrame::from_partition(data, step, threshold, volume_dims)
}

/// A camera orbiting a hybrid frame's bounds.
pub fn frame_camera(frame: &HybridFrame, aspect: f64) -> Camera {
    Camera::orbit(
        frame.bounds.center(),
        frame.bounds.longest_edge() * 2.2,
        0.5,
        0.35,
        aspect,
    )
}

/// A driven 3-cell cavity simulation advanced to a ringing state.
/// `res` = grid cells across the cavity diameter.
pub fn driven_three_cell(res: usize, warmup_steps: usize) -> FdtdSim {
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, res));
    sim.run(warmup_steps);
    sim
}

/// The electric-field snapshot of a driven 3-cell cavity.
pub fn three_cell_e_field(res: usize, warmup_steps: usize) -> FieldSampler {
    let sim = driven_three_cell(res, warmup_steps);
    FieldSampler::capture(&sim, FieldKind::Electric)
}

/// Seeds `n_lines` E-field lines on a captured cavity field.
pub fn cavity_lines(field: &FieldSampler, n_lines: usize, seed: u64) -> Vec<SeededLine> {
    let cavity_radius = 1.0; // three_cell spec, normalized units
    seed_lines(
        field,
        &SeedingParams {
            n_lines,
            trace: TraceParams {
                step: 0.04 * cavity_radius,
                max_steps: 250,
                min_magnitude: 1e-6 * field.max_magnitude().max(1e-300),
                bidirectional: true,
            },
            seed,
            min_magnitude_frac: 1e-3,
        },
    )
}

/// A camera looking into the cavity from outside.
pub fn cavity_camera(field: &FieldSampler, aspect: f64) -> Camera {
    let b = field.bounds();
    Camera::orbit(b.center(), b.longest_edge() * 1.8, 0.9, 0.35, aspect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_snapshot_is_deterministic_and_sized() {
        let a = halo_snapshot(500, 2, 9);
        let b = halo_snapshot(500, 2, 9);
        assert_eq!(a.particles, b.particles);
        assert_eq!(a.particles.len(), 500);
    }

    #[test]
    fn hybrid_frame_workload_respects_budget() {
        let snap = halo_snapshot(2_000, 1, 3);
        let data = partitioned(&snap, PlotType::XYZ);
        let frame = hybrid_frame(&data, 0, 400, [8, 8, 8]);
        assert!(frame.points.len() <= 400);
    }

    #[test]
    fn cavity_workload_produces_lines() {
        let field = three_cell_e_field(8, 150);
        assert!(field.max_magnitude() > 0.0);
        let lines = cavity_lines(&field, 20, 1);
        assert!(!lines.is_empty());
    }
}
