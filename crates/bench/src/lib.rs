//! Benchmark harness for the reproduction: shared workload builders plus
//! one experiment module per figure / in-text claim of the paper.
//!
//! The `experiments` binary (`cargo run -p accelviz-bench --release --bin
//! experiments -- all`) prints the paper-vs-measured rows recorded in
//! `EXPERIMENTS.md`; the Criterion benches in `benches/` time the same
//! workloads.

pub mod experiments;
pub mod workloads;
