//! One function per paper artifact. Each prints a section of
//! paper-vs-measured rows; `run_all` regenerates everything recorded in
//! `EXPERIMENTS.md`.

use crate::workloads;
use accelviz_beam::diagnostics::{four_fold_symmetry, BeamDiagnostics};
use accelviz_beam::io::snapshot_bytes;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::remote::TransferReport;
use accelviz_core::scene::{
    render_hybrid_frame, render_line_set, GridField, LineRepresentation, RenderMode,
};
use accelviz_core::transfer::TransferFunctionPair;
use accelviz_core::viewer::FrameCache;
use accelviz_emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz_emsim::courant::{cell_size_for_steps, courant_dt, steps_for_duration};
use accelviz_emsim::energy::{energy_in_z_range, poynting_flux_z, total_energy};
use accelviz_emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz_emsim::sample::{FieldKind, FieldSampler, VectorField3};
use accelviz_fieldlines::compact::{compact_bytes, saving_factor, serialize_lines};
use accelviz_fieldlines::illuminated::segment_count;
use accelviz_fieldlines::line::FieldLine;
use accelviz_fieldlines::seeding::density_correlation;
use accelviz_fieldlines::sos::{sos_strip, sos_triangle_count, SosParams};
use accelviz_fieldlines::style::LineStyle;
use accelviz_fieldlines::tube::tube_triangle_count;
use accelviz_math::stats::LinearFit;
use accelviz_math::{Rgba, Vec3};
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::{extract, threshold_for_budget};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use accelviz_render::framebuffer::Framebuffer;
use accelviz_render::points::PointStyle;
use accelviz_render::volume::{render_volume, VolumeStyle};
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn header(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper: {claim}");
}

/// FIG1 — volume-only 256³ vs hybrid 64³+points: detail and frame cost.
pub fn fig1(n_particles: usize) {
    header(
        "FIG1",
        "mixed 64³+2M-point rendering shows more low-density detail than a \
         256³ volume rendering, at much higher frame rates",
    );
    let snap = workloads::halo_snapshot(n_particles, 40, 11);
    let data = workloads::partitioned(&snap, PlotType::X_PX_Y);

    // Brute-force: high-resolution volume, everything volume-rendered.
    let t0 = Instant::now();
    let hires = HybridFrame::from_partition(&data, 0, 0.0, [256, 256, 256]);
    let hires_prep_ms = ms(t0);

    // Hybrid: low-res volume + point budget covering the halo.
    let budget = n_particles / 25;
    let t0 = Instant::now();
    let hybrid = workloads::hybrid_frame(&data, 0, budget, [64, 64, 64]);
    let hybrid_prep_ms = ms(t0);

    let cam = workloads::frame_camera(&hybrid, 1.0);
    let tfs = TransferFunctionPair::linked_at(0.03, 0.01);
    let vs = VolumeStyle {
        steps: 192,
        ..Default::default()
    };
    let ps = PointStyle::default();

    let mut fb_vol = Framebuffer::new(512, 512);
    let t0 = Instant::now();
    let stats_vol = render_hybrid_frame(
        &mut fb_vol,
        &cam,
        &hires,
        &tfs,
        RenderMode::VolumeOnly,
        &vs,
        &ps,
    );
    let vol_ms = ms(t0);

    let mut fb_hyb = Framebuffer::new(512, 512);
    let vs_low = VolumeStyle {
        steps: 48,
        ..Default::default()
    };
    let t0 = Instant::now();
    let stats_hyb = render_hybrid_frame(
        &mut fb_hyb,
        &cam,
        &hybrid,
        &tfs,
        RenderMode::Hybrid,
        &vs_low,
        &ps,
    );
    let hyb_ms = ms(t0);

    // Detail metric: luminance variance (structure) over the whole image
    // and count of lit pixels outside the dense core.
    let var_vol = fb_vol.region_luminance_variance(0, 0, 512, 512);
    let var_hyb = fb_hyb.region_luminance_variance(0, 0, 512, 512);
    println!(
        "volume-only 256³ : prep {hires_prep_ms:.0} ms, render {vol_ms:.1} ms \
         ({} samples), lum-variance {var_vol:.5}, texture {} MB",
        stats_vol.volume_samples,
        hires.volume_bytes() / (1 << 20),
    );
    println!(
        "hybrid 64³+{}pts : prep {hybrid_prep_ms:.0} ms, render {hyb_ms:.1} ms \
         ({} samples, {} pts), lum-variance {var_hyb:.5}, size {:.1} MB",
        hybrid.points.len(),
        stats_hyb.volume_samples,
        stats_hyb.points_drawn,
        hybrid.total_bytes() as f64 / 1e6,
    );
    println!(
        "measured: hybrid renders {:.1}x faster; detail (variance) ratio {:.2}; \
         fill-cost ratio {:.1}x",
        vol_ms / hyb_ms.max(1e-9),
        var_hyb / var_vol.max(1e-12),
        stats_vol.volume_samples as f64 / stats_hyb.volume_samples.max(1) as f64,
    );
}

/// FIG2 — the four phase-space distributions of time step 180.
pub fn fig2(n_particles: usize) {
    header(
        "FIG2",
        "four 3-D distributions — (x,y,z), (x,px,y), (x,px,z), (px,py,pz) — \
         of one time step, each through the same pipeline",
    );
    let snap = workloads::halo_snapshot(n_particles, 40, 11);
    for plot in PlotType::FIGURE2 {
        let t0 = Instant::now();
        let data = workloads::partitioned(&snap, plot);
        let part_ms = ms(t0);
        let frame = workloads::hybrid_frame(&data, 0, n_particles / 20, [64, 64, 64]);
        let cam = workloads::frame_camera(&frame, 1.0);
        let tfs = TransferFunctionPair::linked_at(0.03, 0.01);
        let mut fb = Framebuffer::new(256, 256);
        let t0 = Instant::now();
        let stats = render_hybrid_frame(
            &mut fb,
            &cam,
            &frame,
            &tfs,
            RenderMode::Hybrid,
            &VolumeStyle {
                steps: 48,
                ..Default::default()
            },
            &PointStyle::default(),
        );
        println!(
            "{:10}: partition {part_ms:6.0} ms, render {:6.1} ms, {} pts drawn, \
             {} leaves, lit px {}",
            plot.name(),
            ms(t0),
            stats.points_drawn,
            data.tree().leaf_count(),
            fb.lit_pixel_count(0.01),
        );
    }
}

/// FIG3 — the dual transfer functions and their inverse linking.
pub fn fig3() {
    header(
        "FIG3",
        "volume TF (density → color/opacity) and point TF (density → \
         fraction of points drawn) are inverses; the user drags their \
         shared boundary",
    );
    let mut pair = TransferFunctionPair::linked_at(0.10, 0.04);
    println!("density   vol-weight  pt-fraction  sum");
    for i in 0..=8 {
        let d = i as f64 / 8.0 * 0.25;
        println!(
            "{d:7.3}   {:10.4}  {:11.4}  {:.4}",
            pair.volume.weight(d),
            pair.point.fraction(d),
            pair.coverage(d)
        );
    }
    pair.edit_volume_threshold(0.18);
    let max_dev = (0..=100)
        .map(|i| (pair.coverage(i as f64 / 100.0) - 1.0).abs())
        .fold(0.0, f64::max);
    println!("after dragging the boundary to 0.18: max |coverage − 1| = {max_dev:.2e}");
}

/// FIG4 — decomposition of a hybrid rendering of a sphere-like (x,y,z)
/// distribution into volume part, combined, and point part.
pub fn fig4(n_particles: usize) {
    header(
        "FIG4",
        "a hybrid rendering decomposes into the volume-rendered portion, \
         the combined image, and the point-rendered portion",
    );
    use accelviz_beam::distribution::{Distribution, DistributionKind};
    let dist = Distribution::new(
        DistributionKind::UniformSphere,
        Vec3::splat(1.0e-3),
        Vec3::ZERO,
    );
    let particles = dist.sample(n_particles, 21);
    let snap = accelviz_beam::simulation::Snapshot {
        step: 0,
        s: 0.0,
        particles,
    };
    let data = workloads::partitioned(&snap, PlotType::XYZ);
    let frame = workloads::hybrid_frame(&data, 0, n_particles / 10, [32, 32, 32]);
    let cam = workloads::frame_camera(&frame, 1.0);
    let tfs = TransferFunctionPair::linked_at(0.2, 0.05);
    let vs = VolumeStyle {
        steps: 64,
        ..Default::default()
    };
    let ps = PointStyle {
        color: Rgba::WHITE,
        ..Default::default()
    };
    for (label, mode) in [
        ("volume part ", RenderMode::VolumeOnly),
        ("combined    ", RenderMode::Hybrid),
        ("points part ", RenderMode::PointsOnly),
    ] {
        let mut fb = Framebuffer::new(256, 256);
        let stats = render_hybrid_frame(&mut fb, &cam, &frame, &tfs, mode, &vs, &ps);
        println!(
            "{label}: lit px {:6}, volume samples {:9}, points {:6}",
            fb.lit_pixel_count(0.005),
            stats.volume_samples,
            stats.points_drawn
        );
    }
}

/// FIG5 — the 350-step time series: four-fold symmetry, frame sizes, and
/// the viewer's cached/uncached stepping behavior.
pub fn fig5(n_particles: usize, recorded_steps: usize) {
    header(
        "FIG5",
        "350 recorded steps of the (x,y,z) distribution; four-fold FODO \
         symmetry; ~10 frames of ≤100 MB fit in memory; cached frames \
         display instantaneously, misses take ~10 s per 100 MB",
    );
    let t0 = Instant::now();
    let series = workloads::halo_series(n_particles, recorded_steps, 11);
    println!(
        "simulated {} recorded steps in {:.1} s",
        series.len(),
        t0.elapsed().as_secs_f64()
    );

    let params = accelviz_core::pipeline::PipelineParams {
        plot: PlotType::XYZ,
        build: BuildParams {
            max_depth: 5,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
        point_budget: n_particles / 20,
        volume_dims: [32, 32, 32],
    };
    let t0 = Instant::now();
    let frames = accelviz_core::pipeline::process_run(&series, &params);
    println!(
        "partition+extract of {} frames: {:.1} s total",
        frames.len(),
        t0.elapsed().as_secs_f64()
    );

    let d0 = BeamDiagnostics::of(&series[0].particles);
    let r0 = (d0.rms_x * d0.rms_x + d0.rms_y * d0.rms_y).sqrt();
    for idx in [0, recorded_steps / 2, recorded_steps] {
        let d = BeamDiagnostics::of(&series[idx].particles);
        println!(
            "step {idx:4}: rms ({:.2}, {:.2}) mm, halo(4·r₀) {:.4}, 4-fold symmetry \
             {:.3}, hybrid size {:.2} MB",
            d.rms_x * 1e3,
            d.rms_y * 1e3,
            accelviz_beam::diagnostics::halo_fraction_beyond(&series[idx].particles, 4.0 * r0),
            four_fold_symmetry(&series[idx].particles),
            frames[idx].total_bytes() as f64 / 1e6
        );
    }

    // Viewer model at paper scale: pretend each frame is the paper's
    // ~100 MB (size model), keep our measured texture sizes.
    let sizes: Vec<(u64, u64)> = frames
        .iter()
        .map(|f| (100 << 20, f.volume_bytes()))
        .collect();
    let cache = FrameCache::paper_desktop(sizes);
    let first_pass: f64 = (0..frames.len().min(10))
        .map(|f| cache.step_to(f).seconds)
        .sum();
    let second_pass: f64 = (0..frames.len().min(10))
        .map(|f| cache.step_to(f).seconds)
        .sum();
    println!(
        "viewer: first pass over 10 frames {first_pass:.1} s (cold), second pass \
         {second_pass:.3} s (cached); resident {}",
        cache.resident_count()
    );
}

/// PREP — partitioning scales linearly; extraction reads only the prefix.
pub fn prep() {
    header(
        "PREP",
        "partitioning is I/O-bound and scales linearly (~7 min per 100 M \
         particles); extraction copies a contiguous prefix and never reads \
         discarded particles; multi-node build matches single-node",
    );
    let mut sizes = Vec::new();
    let mut times = Vec::new();
    for &n in &[20_000usize, 40_000, 80_000, 160_000, 320_000] {
        let snap = workloads::halo_snapshot(n, 5, 3);
        let t0 = Instant::now();
        let data = workloads::partitioned(&snap, PlotType::XYZ);
        let dt = t0.elapsed().as_secs_f64();
        sizes.push(n as f64);
        times.push(dt);
        let t1 = Instant::now();
        let ex = extract(&data, threshold_for_budget(&data, n / 10));
        let ex_us = t1.elapsed().as_secs_f64() * 1e6;
        println!(
            "N = {n:7}: partition {:8.1} ms ({:.1} Mpts/s), extract {:6.1} µs \
             (kept {:6}, discarded {} never touched)",
            dt * 1e3,
            n as f64 / dt / 1e6,
            ex_us,
            ex.particles.len(),
            ex.discarded
        );
    }
    if let Some(fit) = LinearFit::scaling_exponent(&sizes, &times) {
        println!(
            "measured scaling exponent {:.2} (paper claims linear, i.e. 1.0); R² = {:.3}",
            fit.slope, fit.r_squared
        );
    }
    // Parallel (multi-node model) build agreement.
    let snap = workloads::halo_snapshot(100_000, 5, 3);
    let params = BuildParams {
        max_depth: 6,
        leaf_capacity: 256,
        gradient_refinement: None,
    };
    let t0 = Instant::now();
    let serial = partition(&snap.particles, PlotType::XYZ, params);
    let t_serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = partition_parallel(&snap.particles, PlotType::XYZ, params);
    let t_par = t0.elapsed().as_secs_f64();
    println!(
        "multi-node build: {:.1} ms vs serial {:.1} ms ({:.2}x); particle counts agree: {}",
        t_par * 1e3,
        t_serial * 1e3,
        t_serial / t_par.max(1e-12),
        serial.particles().len() == par.particles().len()
    );
}

/// SIZE — the storage arithmetic of §2 and the remote-transfer picture.
pub fn size(n_particles: usize) {
    header(
        "SIZE",
        "100 M particles ⇒ 5 GB/step; 1 B ⇒ 48 GB; hybrid frames ≤100 MB \
         make remote transfer practical; ~10 s disk load per 100 MB",
    );
    println!(
        "raw snapshot arithmetic: 100 M → {:.2} GB, 1 B → {:.1} GB (48 B/particle)",
        snapshot_bytes(100_000_000) as f64 / 1e9,
        snapshot_bytes(1_000_000_000) as f64 / 1e9
    );
    let snap = workloads::halo_snapshot(n_particles, 20, 7);
    let bytes = accelviz_beam::io::snapshot_to_vec(0, &snap.particles).len();
    println!(
        "measured serialized {} particles: {} bytes ({} B/particle incl. header)",
        n_particles,
        bytes,
        bytes / n_particles
    );
    let data = workloads::partitioned(&snap, PlotType::XYZ);
    println!(
        "partitioned form: particle file {} B + node file {} B (adds {:.2}%)",
        data.particle_file_bytes(),
        data.node_file_bytes(),
        100.0 * data.node_file_bytes() as f64 / data.particle_file_bytes() as f64
    );
    for budget_frac in [2usize, 10, 50] {
        let frame = workloads::hybrid_frame(&data, 0, n_particles / budget_frac, [64, 64, 64]);
        println!(
            "hybrid (1/{budget_frac} points): {:8.3} MB, compression {:6.1}x",
            frame.total_bytes() as f64 / 1e6,
            frame.compression_factor()
        );
    }
    for report in [
        TransferReport::new("raw 5 GB step", 5_000_000_000),
        TransferReport::new("hybrid 100 MB", 100_000_000),
        TransferReport::new("hybrid 10 MB", 10_000_000),
    ] {
        println!(
            "transfer {:16}: WAN {:8.1} s, LAN {:7.2} s",
            report.label, report.wan_seconds, report.lan_seconds
        );
    }
}

/// FIG6 — representation comparison: triangle counts and render cost.
pub fn fig6(res: usize, n_lines: usize) {
    header(
        "FIG6",
        "self-orienting surfaces give streamtube-like images from ~5–6x \
         fewer triangles; enhancements: lighting, halos, cutaway, \
         transparency",
    );
    let field = workloads::three_cell_e_field(res, 600);
    let lines: Vec<FieldLine> = workloads::cavity_lines(&field, n_lines, 5)
        .into_iter()
        .map(|sl| sl.line)
        .collect();
    let total_points: usize = lines.iter().map(|l| l.len()).sum();
    println!("{} lines, {total_points} vertices traced", lines.len());

    let cam = workloads::cavity_camera(&field, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let analytic_sos: usize = lines.iter().map(|l| sos_triangle_count(l.len())).sum();
    let analytic_tube: usize = lines.iter().map(|l| tube_triangle_count(l.len(), 12)).sum();
    let analytic_segs: usize = lines.iter().map(segment_count).sum();
    println!(
        "analytic geometry: lines {analytic_segs} segments; SOS {analytic_sos} tris; \
         streamtubes(12-gon) {analytic_tube} tris; ratio {:.1}x",
        analytic_tube as f64 / analytic_sos.max(1) as f64
    );

    for (label, rep) in [
        ("(a) flat lines     ", LineRepresentation::FlatLines),
        ("(b) illuminated    ", LineRepresentation::Illuminated),
        ("(c) streamtubes    ", LineRepresentation::Streamtubes),
        (
            "(d) self-orienting ",
            LineRepresentation::SelfOrientingSurfaces,
        ),
        ("(e) ribbons        ", LineRepresentation::Ribbons),
        ("(f) enhanced light ", LineRepresentation::EnhancedLighting),
        ("    haloed SOS     ", LineRepresentation::HaloedSos),
        ("(i) transparent SOS", LineRepresentation::TransparentSos),
    ] {
        let mut fb = Framebuffer::new(384, 384);
        let t0 = Instant::now();
        let stats = render_line_set(&mut fb, &cam, &lines, rep, &style, 0.012);
        println!(
            "{label}: {:6} tris, {:8} frags, {:7.1} ms, lit px {:6}",
            stats.triangles,
            stats.fragments,
            ms(t0),
            fb.lit_pixel_count(0.01)
        );
    }

    // (h) cutaway: drop lines whose mean x is in the front half.
    let cut: Vec<FieldLine> = lines
        .iter()
        .filter(|l| {
            let mean_x: f64 = l.points.iter().map(|p| p.x).sum::<f64>() / l.len().max(1) as f64;
            mean_x < 0.0
        })
        .cloned()
        .collect();
    let mut fb = Framebuffer::new(384, 384);
    let stats = render_line_set(
        &mut fb,
        &cam,
        &cut,
        LineRepresentation::SelfOrientingSurfaces,
        &style,
        0.012,
    );
    println!(
        "(h) cutaway (front half removed): {} of {} lines, {} tris",
        cut.len(),
        lines.len(),
        stats.triangles
    );
}

/// FIG7 — incremental loading: density ∝ magnitude at every prefix.
pub fn fig7(res: usize, n_lines: usize) {
    header(
        "FIG7",
        "incremental loading: strong-field regions fill first; every \
         prefix shows line density proportional to field magnitude; each \
         image's line set is a superset of the previous",
    );
    let field = workloads::three_cell_e_field(res, 600);
    let lines = workloads::cavity_lines(&field, n_lines, 5);
    println!("seeded {} lines", lines.len());
    for frac in [0.1, 0.25, 0.5, 1.0] {
        let prefix = ((lines.len() as f64 * frac) as usize).max(1);
        let r = density_correlation(&field, &lines, prefix);
        let mean_mag: f64 = lines[..prefix]
            .iter()
            .map(|sl| sl.line.mean_magnitude())
            .sum::<f64>()
            / prefix as f64;
        println!(
            "first {prefix:5} lines: density-magnitude correlation r = {r:.3}, \
             mean |E| of prefix {mean_mag:.3e}"
        );
    }
    // Strong regions load first: mean magnitude of the first decile beats
    // the last decile.
    let decile = (lines.len() / 10).max(1);
    let first: f64 = lines[..decile]
        .iter()
        .map(|l| l.line.mean_magnitude())
        .sum::<f64>()
        / decile as f64;
    let last: f64 = lines[lines.len() - decile..]
        .iter()
        .map(|l| l.line.mean_magnitude())
        .sum::<f64>()
        / decile as f64;
    println!(
        "mean |E|: first decile {first:.3e} vs last decile {last:.3e} \
         (ratio {:.1}x — sparse lines appear in strong regions first)",
        first / last.max(1e-300)
    );

    // The prior-art baseline the paper contrasts with (§3.2 refs
    // [2, 7, 14]): evenly-spaced placement aims at *visually uniform*
    // density, so its density-magnitude correlation should be near zero.
    use accelviz_fieldlines::seeding::SeededLine;
    use accelviz_fieldlines::uniform::{seed_lines_uniform, UniformSeedingParams};
    let uniform = seed_lines_uniform(
        &field,
        &UniformSeedingParams {
            n_lines,
            separation: 0.12,
            trace: accelviz_fieldlines::integrate::TraceParams {
                step: 0.04,
                max_steps: 250,
                min_magnitude: 1e-6 * field.max_magnitude().max(1e-300),
                bidirectional: true,
            },
            seed: 5,
            max_candidates: 50_000,
        },
    );
    let wrapped: Vec<SeededLine> = uniform
        .into_iter()
        .enumerate()
        .map(|(i, line)| SeededLine {
            order: i,
            seed_element: 0,
            line,
        })
        .collect();
    let r_uniform = density_correlation(&field, &wrapped, wrapped.len());
    println!(
        "baseline (evenly-spaced, {} lines): density-magnitude correlation r = \
         {r_uniform:.3} — uniform placement decouples density from |E|, which is \
         exactly what the paper's physicists do not want",
        wrapped.len()
    );
}

/// FIG8 — RF waves propagate in through the input ports and downstream.
pub fn fig8(res: usize) {
    header(
        "FIG8",
        "selected time steps show RF waves propagating in through the \
         input ports (first cell) and out through the output ports (last)",
    );
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, res));
    let len = sim.spec().geometry.spec.total_length();
    let checkpoints = [200usize, 400, 800, 1600];
    let mut last = 0;
    for &cp in &checkpoints {
        sim.run(cp - last);
        last = cp;
        let e1 = energy_in_z_range(&sim, 0.0, len / 3.0);
        let e2 = energy_in_z_range(&sim, len / 3.0, 2.0 * len / 3.0);
        let e3 = energy_in_z_range(&sim, 2.0 * len / 3.0, len);
        let flux = poynting_flux_z(&sim, len / 2.0);
        println!(
            "step {cp:5} (t = {:6.2}): cell energies [{e1:.3e}, {e2:.3e}, {e3:.3e}], \
             mid-plane flux {flux:+.2e}",
            sim.time()
        );
    }
    let e = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = workloads::cavity_lines(&e, 150, 9);
    println!(
        "field lines at final step: {} traced, total energy {:.3e}",
        lines.len(),
        total_energy(&sim)
    );
}

/// FIG9 — the 12-cell structure: element counts, Courant arithmetic,
/// storage arithmetic, and port-induced field asymmetry.
pub fn fig9(compute_res: usize) {
    header(
        "FIG9",
        "12-cell structure with 1.6 M mesh elements; steady state at 40 ns \
         = 326,700 steps; 80 MB/step ⇒ 26 TB; asymmetric ports break the \
         E-field's radial symmetry",
    );
    // Metadata scale: pick the resolution whose vacuum-cell count matches
    // the paper's 1.6 M elements (~32% of grid cells are vacuum).
    let geometry = CavityGeometry::new(CavitySpec::twelve_cell());
    let spec = FdtdSpec::for_geometry(geometry.clone(), 79);
    let dims = spec.dims;
    let total_cells: usize = dims.iter().product();
    // Estimate vacuum fraction from a coarse rasterization.
    let coarse = FdtdSim::new(FdtdSpec::for_geometry(geometry.clone(), 12));
    let vac_frac =
        coarse.vacuum_cell_count() as f64 / coarse.dims().iter().product::<usize>() as f64;
    println!(
        "mesh scale: grid {:?} = {} cells x vacuum fraction {:.2} ≈ {:.2} M elements \
         (paper: 1.6 M)",
        dims,
        total_cells,
        vac_frac,
        total_cells as f64 * vac_frac / 1e6
    );

    // Courant arithmetic in physical units.
    let dx = cell_size_for_steps(40e-9, 326_700, 0.99);
    let dt = courant_dt(dx, dx, dx, 0.99);
    println!(
        "Courant: implied min edge {:.1} µm → dt {:.3e} s → {} steps for 40 ns \
         (paper: 326,700)",
        dx * 1e6,
        dt,
        steps_for_duration(40e-9, dt)
    );
    println!(
        "storage: {:.1} MB/step x 326,700 steps = {:.1} TB (paper: ~80 MB, 26 TB)",
        accelviz_emsim::io::snapshot_bytes(1_600_000) as f64 / 1e6,
        accelviz_emsim::io::run_bytes(1_600_000, 326_700) as f64 / 1e12
    );

    // Compute scale: measure E-field radial asymmetry induced by ports.
    let t0 = Instant::now();
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, compute_res));
    sim.run(1200);
    let e = FieldSampler::capture(&sim, FieldKind::Electric);
    // Probe |E| on a ring inside the first cell vs the same ring rotated
    // 90° about the beam axis.
    let mut num = 0.0;
    let mut den = 0.0;
    let spec3 = CavitySpec::twelve_cell();
    for i in 0..64 {
        let a = i as f64 / 64.0 * std::f64::consts::TAU;
        let r = 0.6 * spec3.cavity_radius;
        let p = Vec3::new(r * a.cos(), r * a.sin(), 0.5 * spec3.cell_length);
        let q = Vec3::new(-p.y, p.x, p.z);
        let mp = e.sample(p).length();
        let mq = e.sample(q).length();
        num += (mp - mq).abs();
        den += mp.max(mq);
    }
    let geom_asym = sim.spec().geometry.radial_asymmetry(24);
    println!(
        "asymmetry: geometry {geom_asym:.3}; |E| 90°-rotation mismatch {:.1}% \
         ({} steps, {:.1} s)",
        100.0 * num / den.max(1e-300),
        sim.steps(),
        t0.elapsed().as_secs_f64()
    );
}

/// COMPR — pre-integrated field lines vs raw field dumps: ~25× saving.
pub fn compr(res: usize, n_lines: usize) {
    header(
        "COMPR",
        "storing pre-integrated field lines instead of raw fields saves \
         about a factor of 25",
    );
    let field = workloads::three_cell_e_field(res, 600);
    let lines: Vec<FieldLine> = workloads::cavity_lines(&field, n_lines, 5)
        .into_iter()
        .map(|sl| sl.line)
        .collect();
    let mut buf = Vec::new();
    serialize_lines(&mut buf, &lines).unwrap();
    let [nx, ny, nz] = field.dims();
    let elements = (0..nz)
        .flat_map(|k| (0..ny).flat_map(move |j| (0..nx).map(move |i| (i, j, k))))
        .filter(|&(i, j, k)| field.cell_is_vacuum(i, j, k))
        .count() as u64;
    let raw = accelviz_emsim::io::snapshot_bytes(elements);
    println!(
        "our scale: {} lines = {} B vs raw E+B over {} elements = {} B → {:.1}x",
        lines.len(),
        buf.len(),
        elements,
        raw,
        raw as f64 / buf.len() as f64
    );
    // Paper scale: same line budget against a 1.6 M-element mesh.
    println!(
        "paper scale (1.6 M elements, same lines): saving factor {:.1}x \
         (paper: ~25x); compact set {:.2} MB",
        saving_factor(&lines, 1_600_000),
        compact_bytes(&lines) as f64 / 1e6
    );
}

/// FIG10 — styled incremental loading; restyling is interactive.
pub fn fig10(res: usize, n_lines: usize) {
    header(
        "FIG10",
        "incremental loading with opacity/color mapped to field strength; \
         the scientist changes these parameters interactively and sees the \
         result immediately (no re-integration)",
    );
    let field = workloads::three_cell_e_field(res, 600);
    let t0 = Instant::now();
    let seeded = workloads::cavity_lines(&field, n_lines, 5);
    let integrate_ms = ms(t0);
    let cam = workloads::cavity_camera(&field, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let params = SosParams {
        half_width: 0.012,
        ..Default::default()
    };

    // Build strips once; restyle in place (the interactive path).
    let mut strips: Vec<(FieldLine, Vec<accelviz_render::rasterizer::Vertex>)> = seeded
        .iter()
        .map(|sl| (sl.line.clone(), sos_strip(&sl.line, cam.eye, &params)))
        .collect();
    let t0 = Instant::now();
    for (line, verts) in &mut strips {
        style.restyle_strip(line, verts);
    }
    let restyle_ms = ms(t0);
    let magnetic = LineStyle::magnetic(field.max_magnitude());
    let t0 = Instant::now();
    for (line, verts) in &mut strips {
        magnetic.restyle_strip(line, verts);
    }
    let restyle2_ms = ms(t0);
    println!(
        "integrate {} lines: {integrate_ms:.1} ms; restyle (opacity/color by \
         |E|): {restyle_ms:.2} ms; palette swap: {restyle2_ms:.2} ms — restyle is \
         {:.0}x cheaper than re-integration",
        seeded.len(),
        integrate_ms / restyle_ms.max(1e-6)
    );
    // Opacity tracks magnitude.
    let (line, verts) = &strips[0];
    let hi = line.magnitudes.iter().cloned().fold(0.0f64, f64::max);
    let lo = line
        .magnitudes
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "first line: |E| range [{lo:.2e}, {hi:.2e}], vertex alpha range \
         [{:.2}, {:.2}] (monotone in |E|)",
        verts.iter().map(|v| v.color.a).fold(1.0f32, f32::min),
        verts.iter().map(|v| v.color.a).fold(0.0f32, f32::max)
    );
}

/// FIG1-adjacent: volume-only rendering cost across texture resolutions
/// (used by the Criterion bench too).
pub fn volume_resolution_sweep(n_particles: usize) {
    header(
        "VOLSWEEP",
        "the fill-rate/texture-memory wall that motivates the hybrid \
         method: volume rendering cost across 3-D texture resolutions",
    );
    let snap = workloads::halo_snapshot(n_particles, 20, 11);
    let data = workloads::partitioned(&snap, PlotType::XYZ);
    for res in [32usize, 64, 128, 256] {
        let frame = HybridFrame::from_partition(&data, 0, 0.0, [res, res, res]);
        let cam = workloads::frame_camera(&frame, 1.0);
        let tfs = TransferFunctionPair::linked_at(0.03, 0.01);
        let mut fb = Framebuffer::new(256, 256);
        let field = GridField(&frame.grid);
        let vtf = tfs.volume;
        let t0 = Instant::now();
        let samples = render_volume(
            &mut fb,
            &cam,
            &field,
            &move |d| vtf.sample(d),
            &VolumeStyle {
                steps: res.max(48),
                ..Default::default()
            },
        );
        println!(
            "{res:3}³ texture ({:6.2} MB): {:7.1} ms, {samples} samples",
            frame.volume_bytes() as f64 / 1e6,
            ms(t0)
        );
    }
}

/// ABLATE — the octree design-choice ablation: depth, capacity, and the
/// §2.5 gradient refinement (space saved vs boundary quality).
pub fn ablate(n_particles: usize) {
    header(
        "ABLATE",
        "§2.5: high-gradient regions need deeper subdivision or 'the \
         outline of the lowest level octree nodes will be visible at the \
         boundary of the halo region'; for low gradients a shallower depth \
         'saves valuable space'",
    );
    use accelviz_octree::builder::GradientRefinement;
    let snap = workloads::halo_snapshot(n_particles, 20, 3);
    let boundary_edge = |data: &accelviz_octree::sorted_store::PartitionedData| -> f64 {
        let t = threshold_for_budget(data, n_particles / 10);
        let leaves = data.sorted_leaves();
        let cut = leaves.partition_point(|&li| data.tree().nodes[li as usize].density < t);
        let w = 8.min(leaves.len() / 2);
        let lo = cut.saturating_sub(w);
        let hi = (cut + w).min(leaves.len());
        let mut sum = 0.0;
        let mut n = 0;
        for &li in &leaves[lo..hi] {
            sum += data.tree().nodes[li as usize].bounds.longest_edge();
            n += 1;
        }
        sum / n.max(1) as f64
    };
    for (label, params) in [
        (
            "depth 4, no refinement    ",
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        ),
        (
            "depth 4 + selective (+2)  ",
            BuildParams {
                max_depth: 4,
                leaf_capacity: 64,
                gradient_refinement: Some(GradientRefinement {
                    extra_depth: 2,
                    contrast_threshold: 6.0,
                }),
            },
        ),
        (
            "depth 6 global            ",
            BuildParams {
                max_depth: 6,
                leaf_capacity: 64,
                gradient_refinement: None,
            },
        ),
    ] {
        let t0 = Instant::now();
        let data = partition(&snap.particles, PlotType::XYZ, params);
        println!(
            "{label}: build {:6.1} ms, {:6} nodes ({:7} B node file), halo-boundary \
             leaf edge {:.4} (smaller = less blocky)",
            ms(t0),
            data.tree().nodes.len(),
            data.node_file_bytes(),
            boundary_edge(&data) / data.tree().bounds.longest_edge()
        );
    }
}

/// ANIM — temporal field-line animation (§3.4): parallel pre-integration
/// across time steps and the storage economics of the animated set.
pub fn anim(res: usize, n_steps: usize, n_lines: usize) {
    header(
        "ANIM",
        "§3.4: animating field lines in the temporal domain; pre-computed \
         lines per step keep many steps in memory; line calculations are \
         parallelized across steps",
    );
    use accelviz_fieldlines::seeding::SeedingParams;
    use accelviz_fieldlines::temporal::{precompute_animation, precompute_animation_serial};
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, res));
    sim.run(300);
    let mut fields = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        sim.run(120);
        fields.push(FieldSampler::capture(&sim, FieldKind::Electric));
    }
    let max_mag = fields.iter().map(|f| f.max_magnitude()).fold(0.0, f64::max);
    let params = SeedingParams {
        n_lines,
        trace: accelviz_fieldlines::integrate::TraceParams {
            step: 0.04,
            max_steps: 250,
            min_magnitude: 1e-6 * max_mag.max(1e-300),
            bidirectional: true,
        },
        seed: 5,
        min_magnitude_frac: 1e-3,
    };
    let t0 = Instant::now();
    let animation = precompute_animation(&fields, &params);
    let par_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _serial = precompute_animation_serial(&fields, &params);
    let ser_s = t0.elapsed().as_secs_f64();
    let total_lines: usize = animation.steps.iter().map(Vec::len).sum();
    println!(
        "{n_steps} captured steps, {total_lines} lines total: parallel pre-integration \
         {par_s:.2} s vs serial {ser_s:.2} s ({:.1}x)",
        ser_s / par_s.max(1e-9)
    );
    println!(
        "animation storage: {:.3} MB compact; at the paper's 1.6 M-element mesh the \
         same animation saves {:.0}x over raw per-step fields",
        animation.total_bytes() as f64 / 1e6,
        animation.saving_factor(1_600_000)
    );
}

/// Runs every experiment at the default scales.
pub fn run_all() {
    fig1(100_000);
    fig2(50_000);
    fig3();
    fig4(30_000);
    fig5(20_000, 60);
    prep();
    size(100_000);
    fig6(14, 250);
    fig7(14, 300);
    fig8(12);
    fig9(14);
    compr(14, 250);
    fig10(14, 250);
    volume_resolution_sweep(50_000);
    ablate(100_000);
    anim(14, 8, 400);
}
