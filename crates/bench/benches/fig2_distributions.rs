//! FIG2 — partitioning and hybrid rendering cost per plot type: the four
//! phase-space distributions of one time step.

use accelviz_bench::workloads;
use accelviz_core::scene::{render_hybrid_frame, RenderMode};
use accelviz_core::transfer::TransferFunctionPair;
use accelviz_octree::plots::PlotType;
use accelviz_render::framebuffer::Framebuffer;
use accelviz_render::points::PointStyle;
use accelviz_render::volume::VolumeStyle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let snap = workloads::halo_snapshot(30_000, 20, 11);

    let mut g = c.benchmark_group("fig2_partition");
    g.sample_size(10);
    for plot in PlotType::FIGURE2 {
        g.bench_with_input(
            BenchmarkId::from_parameter(plot.name()),
            &plot,
            |b, &plot| b.iter(|| workloads::partitioned(&snap, plot)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig2_render");
    g.sample_size(10);
    for plot in PlotType::FIGURE2 {
        let data = workloads::partitioned(&snap, plot);
        let frame = workloads::hybrid_frame(&data, 0, 3_000, [64, 64, 64]);
        let cam = workloads::frame_camera(&frame, 1.0);
        let tfs = TransferFunctionPair::linked_at(0.03, 0.01);
        g.bench_with_input(
            BenchmarkId::from_parameter(plot.name()),
            &frame,
            |b, frame| {
                b.iter(|| {
                    let mut fb = Framebuffer::new(192, 192);
                    render_hybrid_frame(
                        &mut fb,
                        &cam,
                        frame,
                        &tfs,
                        RenderMode::Hybrid,
                        &VolumeStyle {
                            steps: 48,
                            ..Default::default()
                        },
                        &PointStyle::default(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
