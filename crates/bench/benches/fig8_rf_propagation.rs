//! FIG8 — time-domain solver throughput: stepping the driven 3-cell
//! structure, plus field capture for the per-step visualization.

use accelviz_bench::workloads;
use accelviz_emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz_emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz_emsim::sample::{FieldKind, FieldSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_step");
    g.sample_size(10);
    for &res in &[8usize, 12, 16] {
        let geometry = CavityGeometry::new(CavitySpec::three_cell());
        let spec = FdtdSpec::for_geometry(geometry, res);
        let cells: usize = spec.dims.iter().product();
        let mut sim = FdtdSim::new(spec);
        sim.run(50);
        g.throughput(Throughput::Elements(cells as u64));
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, _| {
            b.iter(|| sim.step())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig8_capture");
    g.sample_size(10);
    let sim = workloads::driven_three_cell(12, 300);
    g.bench_function("capture_e_field", |b| {
        b.iter(|| FieldSampler::capture(&sim, FieldKind::Electric))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
