//! FIG1 — render-time comparison: brute-force 256³ volume rendering vs
//! the hybrid 64³-volume + points rendering of the same snapshot.

use accelviz_bench::workloads;
use accelviz_core::hybrid::HybridFrame;
use accelviz_core::scene::{render_hybrid_frame, RenderMode};
use accelviz_core::transfer::TransferFunctionPair;
use accelviz_octree::plots::PlotType;
use accelviz_render::framebuffer::Framebuffer;
use accelviz_render::points::PointStyle;
use accelviz_render::volume::VolumeStyle;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let snap = workloads::halo_snapshot(50_000, 20, 11);
    let data = workloads::partitioned(&snap, PlotType::X_PX_Y);
    let hires = HybridFrame::from_partition(&data, 0, 0.0, [256, 256, 256]);
    let hybrid = workloads::hybrid_frame(&data, 0, 5_000, [64, 64, 64]);
    let cam = workloads::frame_camera(&hybrid, 1.0);
    let tfs = TransferFunctionPair::linked_at(0.03, 0.01);
    let ps = PointStyle::default();

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("volume_only_256", |b| {
        let vs = VolumeStyle {
            steps: 192,
            ..Default::default()
        };
        b.iter(|| {
            let mut fb = Framebuffer::new(256, 256);
            render_hybrid_frame(
                &mut fb,
                &cam,
                &hires,
                &tfs,
                RenderMode::VolumeOnly,
                &vs,
                &ps,
            )
        })
    });
    g.bench_function("hybrid_64_plus_points", |b| {
        let vs = VolumeStyle {
            steps: 48,
            ..Default::default()
        };
        b.iter(|| {
            let mut fb = Framebuffer::new(256, 256);
            render_hybrid_frame(&mut fb, &cam, &hybrid, &tfs, RenderMode::Hybrid, &vs, &ps)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
