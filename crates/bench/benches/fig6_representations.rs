//! FIG6 — field-line representation gallery: geometry build and render
//! cost per representation (the 5–6× streamtube-vs-SOS claim).

use accelviz_bench::workloads;
use accelviz_core::scene::{render_line_set, LineRepresentation};
use accelviz_fieldlines::line::FieldLine;
use accelviz_fieldlines::sos::{sos_strip, SosParams};
use accelviz_fieldlines::style::LineStyle;
use accelviz_fieldlines::tube::{tube_triangles, TubeParams};
use accelviz_math::Vec3;
use accelviz_render::framebuffer::Framebuffer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let field = workloads::three_cell_e_field(12, 400);
    let lines: Vec<FieldLine> = workloads::cavity_lines(&field, 120, 5)
        .into_iter()
        .map(|sl| sl.line)
        .collect();
    let cam = workloads::cavity_camera(&field, 1.0);
    let style = LineStyle::electric(1.0);
    let eye = Vec3::new(0.0, 0.0, 6.0);

    // Geometry construction cost: strips vs polygonal tubes.
    let mut g = c.benchmark_group("fig6_geometry");
    g.sample_size(20);
    g.bench_function("sos_strips", |b| {
        let p = SosParams::default();
        b.iter(|| {
            lines
                .iter()
                .map(|l| sos_strip(l, eye, &p).len())
                .sum::<usize>()
        })
    });
    g.bench_function("streamtubes_12gon", |b| {
        let p = TubeParams::default();
        b.iter(|| {
            lines
                .iter()
                .map(|l| tube_triangles(l, eye, &p).len())
                .sum::<usize>()
        })
    });
    g.finish();

    // Full render cost per representation.
    let mut g = c.benchmark_group("fig6_render");
    g.sample_size(10);
    for (name, rep) in [
        ("flat_lines", LineRepresentation::FlatLines),
        ("illuminated", LineRepresentation::Illuminated),
        ("streamtubes", LineRepresentation::Streamtubes),
        ("sos", LineRepresentation::SelfOrientingSurfaces),
        ("transparent_sos", LineRepresentation::TransparentSos),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &rep, |b, &rep| {
            b.iter(|| {
                let mut fb = Framebuffer::new(192, 192);
                render_line_set(&mut fb, &cam, &lines, rep, &style, 0.012)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
