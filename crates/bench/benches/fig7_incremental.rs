//! FIG7 — incremental seeding cost across line budgets, plus the restyle
//! path of FIG10 (interactive parameter changes never re-integrate).

use accelviz_bench::workloads;
use accelviz_fieldlines::sos::{sos_strip, SosParams};
use accelviz_fieldlines::style::LineStyle;
use accelviz_math::Vec3;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let field = workloads::three_cell_e_field(12, 400);

    let mut g = c.benchmark_group("fig7_seed");
    g.sample_size(10);
    for &n in &[50usize, 150, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| workloads::cavity_lines(&field, n, 5).len())
        });
    }
    g.finish();

    // FIG10: restyling already-built strips vs re-seeding.
    let seeded = workloads::cavity_lines(&field, 150, 5);
    let eye = Vec3::new(0.0, 0.0, 6.0);
    let params = SosParams::default();
    let mut strips: Vec<_> = seeded
        .iter()
        .map(|sl| (sl.line.clone(), sos_strip(&sl.line, eye, &params)))
        .collect();
    let mut g = c.benchmark_group("fig10_restyle");
    g.bench_function("restyle_150_lines", |b| {
        let style = LineStyle::electric(1.0);
        b.iter(|| {
            for (line, verts) in &mut strips {
                style.restyle_strip(line, verts);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
