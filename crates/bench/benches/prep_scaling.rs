//! PREP — partitioning scales linearly in particle count; extraction is a
//! prefix copy whose cost is independent of the discarded data.

use accelviz_bench::workloads;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::extraction::{extract, threshold_for_budget};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("prep_partition");
    g.sample_size(10);
    for &n in &[20_000usize, 80_000, 320_000] {
        let snap = workloads::halo_snapshot(n, 5, 3);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("serial", n), &snap, |b, snap| {
            b.iter(|| {
                partition(
                    &snap.particles,
                    PlotType::XYZ,
                    BuildParams {
                        max_depth: 6,
                        leaf_capacity: 256,
                        gradient_refinement: None,
                    },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("multi_node", n), &snap, |b, snap| {
            b.iter(|| {
                partition_parallel(
                    &snap.particles,
                    PlotType::XYZ,
                    BuildParams {
                        max_depth: 6,
                        leaf_capacity: 256,
                        gradient_refinement: None,
                    },
                )
            })
        });
    }
    g.finish();

    // Extraction: cost depends on the kept prefix, not the total.
    let snap = workloads::halo_snapshot(320_000, 5, 3);
    let data = workloads::partitioned(&snap, PlotType::XYZ);
    let mut g = c.benchmark_group("prep_extract");
    for &budget in &[1_000usize, 32_000, 320_000] {
        let t = threshold_for_budget(&data, budget);
        g.bench_with_input(BenchmarkId::from_parameter(budget), &t, |b, &t| {
            b.iter(|| extract(&data, t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
