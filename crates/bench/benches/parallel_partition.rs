//! Serial vs parallel partitioning at the pool size this process gets
//! (`RAYON_NUM_THREADS` or all cores). For the 1/2/N-thread sweep with
//! digest checks and the committed JSON artifact, run the companion bin:
//! `cargo run -p accelviz-bench --release --bin parallel_partition`.

use accelviz_bench::workloads;
use accelviz_octree::builder::{partition, BuildParams};
use accelviz_octree::parallel::partition_parallel;
use accelviz_octree::plots::PlotType;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn params() -> BuildParams {
    BuildParams {
        max_depth: 6,
        leaf_capacity: 256,
        gradient_refinement: None,
    }
}

fn bench_partition(c: &mut Criterion) {
    let threads = rayon::current_num_threads();
    let mut g = c.benchmark_group("parallel_partition");
    g.sample_size(10);
    for n in [10_000usize, 50_000] {
        let snap = workloads::halo_snapshot(n, 40, 11);
        g.bench_function(format!("serial/{n}"), |b| {
            b.iter(|| partition(black_box(&snap.particles), PlotType::XYZ, params()))
        });
        g.bench_function(format!("parallel_t{threads}/{n}"), |b| {
            b.iter(|| partition_parallel(black_box(&snap.particles), PlotType::XYZ, params()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
