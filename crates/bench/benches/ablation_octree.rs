//! Ablation — the octree design choices DESIGN.md calls out: maximal
//! subdivision level, leaf capacity, and the §2.5 gradient refinement.
//! Measures the build-cost / tree-size / boundary-quality trade-off.

use accelviz_bench::workloads;
use accelviz_octree::builder::{partition, BuildParams, GradientRefinement};
use accelviz_octree::plots::PlotType;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let snap = workloads::halo_snapshot(100_000, 10, 3);

    let mut g = c.benchmark_group("ablation_max_depth");
    g.sample_size(10);
    for &depth in &[3u32, 5, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                partition(
                    &snap.particles,
                    PlotType::XYZ,
                    BuildParams {
                        max_depth: depth,
                        leaf_capacity: 64,
                        gradient_refinement: None,
                    },
                )
                .tree()
                .nodes
                .len()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_leaf_capacity");
    g.sample_size(10);
    for &cap in &[32usize, 256, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                partition(
                    &snap.particles,
                    PlotType::XYZ,
                    BuildParams {
                        max_depth: 6,
                        leaf_capacity: cap,
                        gradient_refinement: None,
                    },
                )
                .tree()
                .nodes
                .len()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_gradient_refinement");
    g.sample_size(10);
    g.bench_function("off_depth4", |b| {
        b.iter(|| {
            partition(
                &snap.particles,
                PlotType::XYZ,
                BuildParams {
                    max_depth: 4,
                    leaf_capacity: 64,
                    gradient_refinement: None,
                },
            )
            .tree()
            .nodes
            .len()
        })
    });
    g.bench_function("selective_4_plus_2", |b| {
        b.iter(|| {
            partition(
                &snap.particles,
                PlotType::XYZ,
                BuildParams {
                    max_depth: 4,
                    leaf_capacity: 64,
                    gradient_refinement: Some(GradientRefinement {
                        extra_depth: 2,
                        contrast_threshold: 6.0,
                    }),
                },
            )
            .tree()
            .nodes
            .len()
        })
    });
    g.bench_function("global_depth6", |b| {
        b.iter(|| {
            partition(
                &snap.particles,
                PlotType::XYZ,
                BuildParams {
                    max_depth: 6,
                    leaf_capacity: 64,
                    gradient_refinement: None,
                },
            )
            .tree()
            .nodes
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
