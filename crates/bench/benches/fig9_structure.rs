//! FIG9 — the 12-cell structure: geometry rasterization, mesh
//! extraction, asymmetry measurement, and compact line serialization
//! (COMPR).

use accelviz_bench::workloads;
use accelviz_emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz_emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz_emsim::mesh::HexMesh;
use accelviz_fieldlines::compact::serialize_lines;
use accelviz_fieldlines::line::FieldLine;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let geometry = CavityGeometry::new(CavitySpec::twelve_cell());

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("rasterize_12cell_solver", |b| {
        b.iter(|| FdtdSim::new(FdtdSpec::for_geometry(geometry.clone(), 10)).vacuum_cell_count())
    });
    g.bench_function("hex_mesh_extraction", |b| {
        let bounds = geometry.bounds;
        b.iter(|| {
            HexMesh::from_grid_mask(bounds, [24, 36, 96], |p| geometry.inside(p)).element_count()
        })
    });
    g.bench_function("radial_asymmetry_probe", |b| {
        b.iter(|| geometry.radial_asymmetry(16))
    });
    g.finish();

    // COMPR: compact serialization throughput.
    let field = workloads::three_cell_e_field(12, 400);
    let lines: Vec<FieldLine> = workloads::cavity_lines(&field, 200, 5)
        .into_iter()
        .map(|sl| sl.line)
        .collect();
    let mut g = c.benchmark_group("compr");
    g.bench_function("serialize_200_lines", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            serialize_lines(&mut buf, &lines).unwrap();
            buf.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
