//! FIG5 — the time-series workflow: per-frame pipeline cost and the
//! viewer's cached vs uncached frame stepping.

use accelviz_bench::workloads;
use accelviz_core::pipeline::{process_run, PipelineParams};
use accelviz_core::viewer::FrameCache;
use accelviz_octree::builder::BuildParams;
use accelviz_octree::plots::PlotType;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let series = workloads::halo_series(10_000, 8, 11);
    let params = PipelineParams {
        plot: PlotType::XYZ,
        build: BuildParams {
            max_depth: 5,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
        point_budget: 1_000,
        volume_dims: [32, 32, 32],
    };

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("process_run_8_frames", |b| {
        b.iter(|| process_run(&series, &params))
    });

    // Viewer stepping: cold vs warm (the paper's "instantaneous" claim).
    g.bench_function("viewer_step_cached", |b| {
        let cache = FrameCache::paper_desktop(vec![(100 << 20, 64 * 64 * 64); 8]);
        for f in 0..8 {
            cache.step_to(f);
        }
        let mut f = 0;
        b.iter(|| {
            let load = cache.step_to(f % 8);
            f += 1;
            assert!(load.cache_hit);
            load
        })
    });
    g.bench_function("viewer_step_thrashing", |b| {
        // Only 3 of 8 frames fit: every step is a miss + eviction.
        let cache = FrameCache::new(
            vec![(100 << 20, 64 * 64 * 64); 8],
            300 << 20,
            10.0e6,
            accelviz_render::texmem::TextureMemory::geforce_class(),
        );
        let mut f = 0;
        b.iter(|| {
            let load = cache.step_to(f % 8);
            f += 1;
            load
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
