//! Time-domain electromagnetic field solver on hexahedral meshes — the
//! substrate standing in for SLAC's Tau3P parallel field solver (§3,
//! ref \[16\]).
//!
//! The paper's field data comes from "a parallel time domain
//! electromagnetic field solver using unstructured hexahedral meshes"
//! modeling "the reflection and transmission properties of open structures
//! in an accelerator design": multi-cell linac cavities with input/output
//! ports. Simulations are Courant-limited ("simulating 100 nanoseconds in
//! the real world requires millions of time steps") and a single step of
//! E+B on a 1.6 M-element mesh costs ~80 MB.
//!
//! This crate implements:
//! - [`mesh`] — explicit hexahedral element meshes.
//! - [`cavity`] — generators for n-cell linac structures with ports
//!   (including the asymmetric-port geometry of Figure 9).
//! - [`fdtd`] — a Yee/FIT time-domain Maxwell solver with PEC staircase
//!   boundaries, port excitation, and sponge absorption, in normalized
//!   units (c = 1).
//! - [`courant`] — the Courant-condition arithmetic in physical units
//!   (used to verify the paper's 326 700-step claim).
//! - [`sample`] — point sampling of E/B for streamline integration.
//! - [`energy`] — total field energy and Poynting flux diagnostics.
//! - [`io`] — field snapshot size accounting (the 80 MB/step, 26 TB
//!   total storage arithmetic).

pub mod cavity;
pub mod courant;
pub mod energy;
pub mod fdtd;
pub mod io;
pub mod mesh;
pub mod modes;
pub mod sample;

pub use cavity::{CavityGeometry, CavitySpec};
pub use courant::courant_dt;
pub use fdtd::{FdtdSim, FdtdSpec};
pub use mesh::{HexElement, HexMesh};
pub use sample::FieldSampler;
