//! Point sampling of E and B fields for streamline integration.
//!
//! The field-line tracer needs E/B at arbitrary points. This module
//! collocates the staggered Yee components to cell centers once, then
//! serves trilinearly interpolated vectors — the standard postprocessing
//! view of a time-domain solver's output (and what gets written to disk
//! per "time step of the electric and magnetic fields together").

use crate::fdtd::FdtdSim;
use accelviz_math::{trilinear, Aabb, Vec3};

/// A vector field over a bounded domain.
pub trait VectorField3: Sync {
    /// Domain bounds.
    fn bounds(&self) -> Aabb;
    /// Field vector at a point (zero outside the domain).
    fn sample(&self, p: Vec3) -> Vec3;
}

/// Cell-centered, trilinearly interpolated snapshot of one field (E or B)
/// of an [`FdtdSim`].
#[derive(Clone, Debug)]
pub struct FieldSampler {
    dims: [usize; 3],
    bounds: Aabb,
    /// Cell-centered vectors, x-fastest layout.
    vectors: Vec<Vec3>,
    /// Vacuum mask per cell (field forced to zero in metal).
    vacuum: Vec<bool>,
}

/// Which field of the simulation to snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// The electric field.
    Electric,
    /// The magnetic field.
    Magnetic,
}

impl FieldSampler {
    /// Snapshots the chosen field of the simulation at the current step.
    pub fn capture(sim: &FdtdSim, kind: FieldKind) -> FieldSampler {
        let dims = sim.dims();
        let [nx, ny, nz] = dims;
        let mut vectors = Vec::with_capacity(nx * ny * nz);
        let mut vacuum = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let v = match kind {
                        FieldKind::Electric => sim.e_at_cell(i, j, k),
                        FieldKind::Magnetic => sim.b_at_cell(i, j, k),
                    };
                    vectors.push(v);
                    vacuum.push(sim.cell_inside()[i + nx * (j + ny * k)]);
                }
            }
        }
        FieldSampler {
            dims,
            bounds: sim.spec().geometry.bounds,
            vectors,
            vacuum,
        }
    }

    /// Builds a sampler from explicit data (used by tests and synthetic
    /// fields).
    pub fn from_vectors(dims: [usize; 3], bounds: Aabb, vectors: Vec<Vec3>) -> FieldSampler {
        assert_eq!(vectors.len(), dims[0] * dims[1] * dims[2]);
        let n = vectors.len();
        FieldSampler {
            dims,
            bounds,
            vectors,
            vacuum: vec![true; n],
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Cell-centered vector at integer cell coordinates.
    pub fn at_cell(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let [nx, ny, _] = self.dims;
        self.vectors[i + nx * (j + ny * k)]
    }

    /// `true` when cell (i, j, k) is vacuum.
    pub fn cell_is_vacuum(&self, i: usize, j: usize, k: usize) -> bool {
        let [nx, ny, _] = self.dims;
        self.vacuum[i + nx * (j + ny * k)]
    }

    /// The largest field magnitude over all vacuum cells.
    pub fn max_magnitude(&self) -> f64 {
        self.vectors
            .iter()
            .zip(&self.vacuum)
            .filter(|(_, &v)| v)
            .map(|(v, _)| v.length())
            .fold(0.0, f64::max)
    }

    fn component(&self, c: usize, i: usize, j: usize, k: usize) -> f64 {
        let [nx, ny, nz] = self.dims;
        let v = self.vectors[i.min(nx - 1) + nx * (j.min(ny - 1) + ny * k.min(nz - 1))];
        v[c]
    }
}

impl VectorField3 for FieldSampler {
    fn bounds(&self) -> Aabb {
        self.bounds
    }

    fn sample(&self, p: Vec3) -> Vec3 {
        let t = self.bounds.normalized_coords(p);
        if !(0.0..=1.0).contains(&t.x) || !(0.0..=1.0).contains(&t.y) || !(0.0..=1.0).contains(&t.z)
        {
            return Vec3::ZERO;
        }
        let [nx, ny, nz] = self.dims;
        let fx = (t.x * nx as f64 - 0.5).clamp(0.0, (nx - 1) as f64);
        let fy = (t.y * ny as f64 - 0.5).clamp(0.0, (ny - 1) as f64);
        let fz = (t.z * nz as f64 - 0.5).clamp(0.0, (nz - 1) as f64);
        let (x0, y0, z0) = (
            fx.floor() as usize,
            fy.floor() as usize,
            fz.floor() as usize,
        );
        let (x1, y1, z1) = (
            (x0 + 1).min(nx - 1),
            (y0 + 1).min(ny - 1),
            (z0 + 1).min(nz - 1),
        );
        let (u, v, w) = (fx - x0 as f64, fy - y0 as f64, fz - z0 as f64);
        let mut out = Vec3::ZERO;
        for c in 0..3 {
            let corners = [
                self.component(c, x0, y0, z0),
                self.component(c, x1, y0, z0),
                self.component(c, x0, y1, z0),
                self.component(c, x1, y1, z0),
                self.component(c, x0, y0, z1),
                self.component(c, x1, y0, z1),
                self.component(c, x0, y1, z1),
                self.component(c, x1, y1, z1),
            ];
            out[c] = trilinear(&corners, u, v, w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_field(v: Vec3) -> FieldSampler {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        FieldSampler::from_vectors([4, 4, 4], bounds, vec![v; 64])
    }

    #[test]
    fn constant_field_samples_constant() {
        let f = constant_field(Vec3::new(1.0, -2.0, 0.5));
        for p in [
            Vec3::splat(0.5),
            Vec3::new(0.1, 0.9, 0.3),
            Vec3::splat(0.01),
        ] {
            assert!(f.sample(p).distance(Vec3::new(1.0, -2.0, 0.5)) < 1e-12);
        }
    }

    #[test]
    fn outside_is_zero() {
        let f = constant_field(Vec3::ONE);
        assert_eq!(f.sample(Vec3::splat(1.5)), Vec3::ZERO);
        assert_eq!(f.sample(Vec3::new(-0.1, 0.5, 0.5)), Vec3::ZERO);
    }

    #[test]
    fn linear_field_is_reproduced_between_cell_centers() {
        // vectors[x] = x-index: sampling halfway between cell centers
        // must interpolate linearly.
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 1.0, 1.0));
        let mut vectors = Vec::new();
        for _k in 0..1 {
            for _j in 0..1 {
                for i in 0..4 {
                    vectors.push(Vec3::new(i as f64, 0.0, 0.0));
                }
            }
        }
        let f = FieldSampler::from_vectors([4, 1, 1], bounds, vectors);
        // Cell centers are at x = 0.5, 1.5, 2.5, 3.5.
        let v = f.sample(Vec3::new(2.0, 0.5, 0.5));
        assert!(
            (v.x - 1.5).abs() < 1e-12,
            "midpoint of cells 1 and 2: {}",
            v.x
        );
    }

    #[test]
    fn max_magnitude() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut vectors = vec![Vec3::ZERO; 27];
        vectors[13] = Vec3::new(0.0, 3.0, 4.0);
        let f = FieldSampler::from_vectors([3, 3, 3], bounds, vectors);
        assert!((f.max_magnitude() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn capture_from_simulation() {
        use crate::cavity::{CavityGeometry, CavitySpec};
        use crate::fdtd::{FdtdSim, FdtdSpec};
        let geometry = CavityGeometry::new(CavitySpec::three_cell());
        let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 10));
        sim.run(150);
        let e = FieldSampler::capture(&sim, FieldKind::Electric);
        let b = FieldSampler::capture(&sim, FieldKind::Magnetic);
        assert!(e.max_magnitude() > 0.0, "driven sim must have E field");
        assert!(b.max_magnitude() > 0.0, "driven sim must have B field");
        // Samples inside the first cell are finite vectors.
        let v = e.sample(Vec3::new(0.0, 0.0, 0.4));
        assert!(v.is_finite());
    }
}
