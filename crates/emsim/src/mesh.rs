//! Explicit hexahedral element meshes.
//!
//! The solver itself runs on a structured staircase grid (the FIT/FDTD
//! equivalence), but everything downstream — field-line seeding, element
//! counts, storage arithmetic — consumes the mesh as an unstructured list
//! of hexahedral elements, exactly the representation Tau3P uses.

use accelviz_math::{Aabb, Vec3};

/// One hexahedral element: 8 vertex indices in the usual bit order
/// (bit 0 = +x, bit 1 = +y, bit 2 = +z).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HexElement {
    /// Vertex indices into [`HexMesh::vertices`].
    pub verts: [u32; 8],
}

/// An unstructured hexahedral mesh.
#[derive(Clone, Debug, Default)]
pub struct HexMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Hexahedral elements.
    pub elements: Vec<HexElement>,
}

impl HexMesh {
    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Axis-aligned bounds of element `e`.
    pub fn element_bounds(&self, e: usize) -> Aabb {
        Aabb::from_points(
            self.elements[e]
                .verts
                .iter()
                .map(|&v| self.vertices[v as usize]),
        )
    }

    /// Centroid of element `e`.
    pub fn element_center(&self, e: usize) -> Vec3 {
        let mut c = Vec3::ZERO;
        for &v in &self.elements[e].verts {
            c += self.vertices[v as usize];
        }
        c / 8.0
    }

    /// Volume of element `e` (exact for the axis-aligned hexes produced by
    /// the structured generators).
    pub fn element_volume(&self, e: usize) -> f64 {
        self.element_bounds(e).volume()
    }

    /// Bounds of the whole mesh.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().copied())
    }

    /// Builds the mesh of all cells of a `dims` grid over `bounds` for
    /// which `keep(cell_center)` is true. Vertices are deduplicated.
    pub fn from_grid_mask(bounds: Aabb, dims: [usize; 3], keep: impl Fn(Vec3) -> bool) -> HexMesh {
        assert!(dims.iter().all(|&d| d > 0));
        let size = bounds.size();
        let d = Vec3::new(
            size.x / dims[0] as f64,
            size.y / dims[1] as f64,
            size.z / dims[2] as f64,
        );
        // Vertex grid is (dims+1)^3; map lazily to compact indices.
        let vdims = [dims[0] + 1, dims[1] + 1, dims[2] + 1];
        let mut vert_map: Vec<u32> = vec![u32::MAX; vdims[0] * vdims[1] * vdims[2]];
        let mut mesh = HexMesh::default();
        let vidx = |i: usize, j: usize, k: usize| i + vdims[0] * (j + vdims[1] * k);

        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let center = bounds.min
                        + Vec3::new(
                            (i as f64 + 0.5) * d.x,
                            (j as f64 + 0.5) * d.y,
                            (k as f64 + 0.5) * d.z,
                        );
                    if !keep(center) {
                        continue;
                    }
                    let mut verts = [0u32; 8];
                    for (bit, v) in verts.iter_mut().enumerate() {
                        let (di, dj, dk) = (bit & 1, (bit >> 1) & 1, (bit >> 2) & 1);
                        let vi = vidx(i + di, j + dj, k + dk);
                        if vert_map[vi] == u32::MAX {
                            vert_map[vi] = mesh.vertices.len() as u32;
                            mesh.vertices.push(
                                bounds.min
                                    + Vec3::new(
                                        (i + di) as f64 * d.x,
                                        (j + dj) as f64 * d.y,
                                        (k + dk) as f64 * d.z,
                                    ),
                            );
                        }
                        *v = vert_map[vi];
                    }
                    mesh.elements.push(HexElement { verts });
                }
            }
        }
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn full_grid_has_all_cells() {
        let m = HexMesh::from_grid_mask(unit_bounds(), [3, 4, 5], |_| true);
        assert_eq!(m.element_count(), 3 * 4 * 5);
        assert_eq!(m.vertices.len(), 4 * 5 * 6);
    }

    #[test]
    fn masked_grid_keeps_only_selected_cells() {
        // Keep the lower-z half.
        let m = HexMesh::from_grid_mask(unit_bounds(), [4, 4, 4], |c| c.z < 0.5);
        assert_eq!(m.element_count(), 4 * 4 * 2);
        for e in 0..m.element_count() {
            assert!(m.element_center(e).z < 0.5);
        }
    }

    #[test]
    fn element_geometry() {
        let m = HexMesh::from_grid_mask(unit_bounds(), [2, 2, 2], |_| true);
        let vol: f64 = (0..m.element_count()).map(|e| m.element_volume(e)).sum();
        assert!((vol - 1.0).abs() < 1e-12, "cells tile the unit cube");
        let b = m.element_bounds(0);
        assert!((b.volume() - 0.125).abs() < 1e-12);
        let c = m.element_center(0);
        assert!(c.distance(Vec3::splat(0.25)) < 1e-12);
        assert_eq!(m.bounds(), unit_bounds());
    }

    #[test]
    fn vertices_are_shared_between_neighbors() {
        let m = HexMesh::from_grid_mask(unit_bounds(), [2, 1, 1], |_| true);
        // Two hexes share a 4-vertex face: 12 unique vertices, not 16.
        assert_eq!(m.vertices.len(), 12);
    }

    #[test]
    fn empty_mask_gives_empty_mesh() {
        let m = HexMesh::from_grid_mask(unit_bounds(), [4, 4, 4], |_| false);
        assert_eq!(m.element_count(), 0);
        assert!(m.vertices.is_empty());
    }
}
