//! Cavity-mode diagnostics: probe recordings and ring-down frequency
//! estimation.
//!
//! The paper's §3 workload is "finding the eigenmodes in extremely large
//! and complex 3D electromagnetic structures"; the solver here is
//! validated the way the accelerator community validates time-domain
//! codes — ring a closed cavity and compare the dominant oscillation
//! frequency against the analytic pillbox mode.

use crate::fdtd::FdtdSim;
use accelviz_math::Vec3;

/// A time series of one field component at a fixed probe point.
#[derive(Clone, Debug, Default)]
pub struct ProbeRecord {
    /// Sampling interval (the solver dt).
    pub dt: f64,
    /// Recorded Ez values at the probe.
    pub samples: Vec<f64>,
}

impl ProbeRecord {
    /// Runs the simulation `steps` steps, recording Ez at the cell
    /// containing `probe` each step.
    pub fn record_ez(sim: &mut FdtdSim, probe: Vec3, steps: usize) -> ProbeRecord {
        let [nx, ny, nz] = sim.dims();
        let b = sim.spec().geometry.bounds;
        let t = b.normalized_coords(probe);
        let i = ((t.x * nx as f64) as usize).min(nx - 1);
        let j = ((t.y * ny as f64) as usize).min(ny - 1);
        let k = ((t.z * nz as f64) as usize).min(nz - 1);
        let mut rec = ProbeRecord {
            dt: sim.dt(),
            samples: Vec::with_capacity(steps),
        };
        for _ in 0..steps {
            sim.step();
            rec.samples.push(sim.e_at_cell(i, j, k).z);
        }
        rec
    }

    /// Estimates the dominant angular frequency from mean-crossing
    /// counting: ω = π · crossings / duration. Returns `None` for silent
    /// or too-short records.
    pub fn dominant_frequency(&self) -> Option<f64> {
        if self.samples.len() < 8 {
            return None;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let amplitude = self
            .samples
            .iter()
            .map(|s| (s - mean).abs())
            .fold(0.0, f64::max);
        if amplitude < 1e-12 {
            return None;
        }
        // Hysteresis against noise: only count crossings that travel at
        // least 5% of the amplitude past the mean.
        let band = 0.05 * amplitude;
        let mut crossings = 0usize;
        let mut state: i8 = 0;
        for &s in &self.samples {
            let v = s - mean;
            let new_state = if v > band {
                1
            } else if v < -band {
                -1
            } else {
                state
            };
            if state != 0 && new_state != 0 && new_state != state {
                crossings += 1;
            }
            state = new_state;
        }
        let duration = self.dt * (self.samples.len() - 1) as f64;
        if duration <= 0.0 || crossings == 0 {
            return None;
        }
        Some(std::f64::consts::PI * crossings as f64 / duration)
    }
}

/// The analytic TM₀₁₀ angular frequency of a cylindrical pillbox cavity
/// of radius `r` in normalized units (c = 1): ω = j₀₁ / r with
/// j₀₁ ≈ 2.405 the first zero of J₀.
pub fn pillbox_tm010_frequency(r: f64) -> f64 {
    assert!(r > 0.0);
    2.404_825_557_695_773 / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cavity::{CavityGeometry, CavitySpec};
    use crate::fdtd::FdtdSpec;

    #[test]
    fn synthetic_sine_frequency_is_recovered() {
        let omega = 3.7;
        let dt = 0.01;
        let rec = ProbeRecord {
            dt,
            samples: (0..4000).map(|i| (omega * dt * i as f64).sin()).collect(),
        };
        let f = rec.dominant_frequency().unwrap();
        assert!(
            (f / omega - 1.0).abs() < 0.02,
            "estimated {f}, true {omega}"
        );
    }

    #[test]
    fn silence_and_short_records_give_none() {
        let rec = ProbeRecord {
            dt: 0.01,
            samples: vec![0.0; 1000],
        };
        assert!(rec.dominant_frequency().is_none());
        let short = ProbeRecord {
            dt: 0.01,
            samples: vec![1.0, -1.0],
        };
        assert!(short.dominant_frequency().is_none());
    }

    #[test]
    fn closed_single_cell_rings_near_tm010() {
        // A single closed cell (length 0.8, radius 1, no ports, no iris
        // since there are no interior boundaries) is a pillbox up to the
        // staircase approximation: the ring-down frequency must land near
        // the analytic TM010 line.
        let spec = CavitySpec {
            cells: 1,
            with_ports: false,
            ..CavitySpec::three_cell()
        };
        let geometry = CavityGeometry::new(spec);
        let mut fspec = FdtdSpec::for_geometry(geometry, 20);
        fspec.drive_amplitude = 0.0;
        fspec.sponge_strength = 0.0;
        let mut sim = crate::fdtd::FdtdSim::new(fspec);
        // Kick the cavity with an on-axis Ez bump (couples mostly to
        // TM010-like modes) and listen at the center.
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.5, 1.0);
        let rec = ProbeRecord::record_ez(&mut sim, Vec3::new(0.0, 0.0, 0.4), 3000);
        let measured = rec.dominant_frequency().expect("cavity must ring");
        let analytic = pillbox_tm010_frequency(1.0);
        let ratio = measured / analytic;
        assert!(
            (0.75..1.35).contains(&ratio),
            "ring-down at ω = {measured:.3}, TM010 = {analytic:.3} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn smaller_cavity_rings_higher() {
        let freq_for = |radius: f64| -> f64 {
            let spec = CavitySpec {
                cells: 1,
                cavity_radius: radius,
                iris_radius: 0.35 * radius,
                cell_length: 0.8 * radius,
                iris_thickness: 0.12 * radius,
                port_half_width: 0.3 * radius,
                with_ports: false,
            };
            let geometry = CavityGeometry::new(spec);
            let mut fspec = FdtdSpec::for_geometry(geometry, 16);
            fspec.drive_amplitude = 0.0;
            fspec.sponge_strength = 0.0;
            let mut sim = crate::fdtd::FdtdSim::new(fspec);
            sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4 * radius), 0.5 * radius, 1.0);
            let rec = ProbeRecord::record_ez(&mut sim, Vec3::new(0.0, 0.0, 0.4 * radius), 2500);
            rec.dominant_frequency().expect("must ring")
        };
        let f_big = freq_for(1.0);
        let f_small = freq_for(0.5);
        // ω ∝ 1/R for the pillbox family.
        let ratio = f_small / f_big;
        assert!(
            (1.6..2.4).contains(&ratio),
            "frequency scaling ratio {ratio}"
        );
    }
}
