//! Multi-cell linac cavity geometry with input/output ports.
//!
//! The paper's test structures are 3-cell and 12-cell linear accelerator
//! sections: a chain of cylindrical cavity cells along the beam (z) axis,
//! separated by iris constrictions, with waveguide *ports* through which
//! RF power "flows in from the top and bottom through input ports, and
//! then flows to the right" (Figure 9). The port geometry is radially
//! asymmetric, which visibly breaks the E-field symmetry — a claim the
//! FIG9 experiment measures.

use accelviz_math::{Aabb, Vec3};

/// Parameters of an n-cell linac structure.
#[derive(Clone, Copy, Debug)]
pub struct CavitySpec {
    /// Number of accelerating cells.
    pub cells: usize,
    /// Cavity (cell) radius.
    pub cavity_radius: f64,
    /// Iris aperture radius (beam hole between cells).
    pub iris_radius: f64,
    /// Length of one cell along z.
    pub cell_length: f64,
    /// Thickness of the iris wall between cells.
    pub iris_thickness: f64,
    /// Half-width of the (square cross-section) waveguide ports.
    pub port_half_width: f64,
    /// `true` attaches an input port (+y wall of the first cell) and an
    /// output port (+y wall of the last cell) plus a −y input port — the
    /// asymmetric arrangement of the paper's figures.
    pub with_ports: bool,
}

impl CavitySpec {
    /// The 3-cell structure of Figures 6–8 (normalized units: cavity
    /// radius 1).
    pub fn three_cell() -> CavitySpec {
        CavitySpec {
            cells: 3,
            cavity_radius: 1.0,
            iris_radius: 0.35,
            cell_length: 0.8,
            iris_thickness: 0.12,
            port_half_width: 0.3,
            with_ports: true,
        }
    }

    /// The 12-cell structure of Figure 9.
    pub fn twelve_cell() -> CavitySpec {
        CavitySpec {
            cells: 12,
            ..CavitySpec::three_cell()
        }
    }

    /// Total structure length along z.
    pub fn total_length(&self) -> f64 {
        self.cells as f64 * self.cell_length
    }

    /// Port extent above the cavity wall.
    fn port_height(&self) -> f64 {
        0.6 * self.cavity_radius
    }
}

/// The realized geometry: an inside/outside predicate over a bounding box,
/// plus the port regions used by the solver for drive and absorption.
#[derive(Clone, Debug)]
pub struct CavityGeometry {
    /// The generating spec.
    pub spec: CavitySpec,
    /// Domain bounds (vacuum + metal).
    pub bounds: Aabb,
    /// Axis-aligned region of the input port aperture (+y, first cell).
    pub input_port: Aabb,
    /// Second input port (−y, first cell).
    pub input_port_lower: Aabb,
    /// Output port aperture (+y, last cell).
    pub output_port: Aabb,
}

impl CavityGeometry {
    /// Builds the geometry for a spec. The beam axis is z, starting at
    /// z = 0; the structure is centered on x = y = 0.
    pub fn new(spec: CavitySpec) -> CavityGeometry {
        assert!(spec.cells >= 1);
        assert!(spec.iris_radius < spec.cavity_radius);
        let r = spec.cavity_radius;
        let len = spec.total_length();
        let margin = 0.15 * r;
        let top = if spec.with_ports {
            r + spec.port_height()
        } else {
            r
        };
        let bounds = Aabb::new(
            Vec3::new(-r - margin, -top - margin, -margin),
            Vec3::new(r + margin, top + margin, len + margin),
        );
        let p = spec.port_half_width;
        let cell0_mid = 0.5 * spec.cell_length;
        let cell_last_mid = (spec.cells as f64 - 0.5) * spec.cell_length;
        let input_port = Aabb::new(
            Vec3::new(-p, 0.0, cell0_mid - p),
            Vec3::new(p, top + margin, cell0_mid + p),
        );
        let input_port_lower = Aabb::new(
            Vec3::new(-p, -top - margin, cell0_mid - p),
            Vec3::new(p, 0.0, cell0_mid + p),
        );
        let output_port = Aabb::new(
            Vec3::new(-p, 0.0, cell_last_mid - p),
            Vec3::new(p, top + margin, cell_last_mid + p),
        );
        CavityGeometry {
            spec,
            bounds,
            input_port,
            input_port_lower,
            output_port,
        }
    }

    /// `true` when `p` is inside the vacuum region (cavity cells, iris
    /// apertures, or ports); `false` inside metal or outside the
    /// structure.
    pub fn inside(&self, p: Vec3) -> bool {
        let spec = &self.spec;
        let len = spec.total_length();
        if p.z < 0.0 || p.z > len {
            return false;
        }
        let r2 = p.x * p.x + p.y * p.y;

        // Ports are vacuum channels punched through the cavity wall.
        if spec.with_ports
            && (self.input_port.contains(p)
                || self.input_port_lower.contains(p)
                || self.output_port.contains(p))
        {
            return true;
        }

        // Position within the repeating cell: an iris wall of the given
        // thickness sits at each interior cell boundary.
        let cell_pos = p.z / spec.cell_length;
        let nearest_boundary = cell_pos.round();
        let is_interior_boundary =
            nearest_boundary >= 1.0 && nearest_boundary <= (spec.cells as f64 - 1.0);
        let dist_to_boundary = (p.z - nearest_boundary * spec.cell_length).abs();
        if is_interior_boundary && dist_to_boundary < spec.iris_thickness / 2.0 {
            // Inside the iris wall: vacuum only through the beam hole.
            return r2 < spec.iris_radius * spec.iris_radius;
        }
        // Inside a cell: vacuum within the cavity radius.
        r2 < spec.cavity_radius * spec.cavity_radius
    }

    /// Asymmetry of the vacuum region under 90° rotation about the beam
    /// axis: fraction of probe points whose inside/outside status changes
    /// when rotated (0 for a perfectly radially symmetric structure).
    /// The ports are what make this nonzero.
    pub fn radial_asymmetry(&self, probes_per_axis: usize) -> f64 {
        let n = probes_per_axis.max(2);
        let mut differing = 0usize;
        let mut total = 0usize;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let t = Vec3::new(
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    );
                    let p = Vec3::new(
                        self.bounds.min.x + t.x * self.bounds.size().x,
                        self.bounds.min.y + t.y * self.bounds.size().y,
                        self.bounds.min.z + t.z * self.bounds.size().z,
                    );
                    // Rotate 90° about z: (x, y) → (−y, x).
                    let q = Vec3::new(-p.y, p.x, p.z);
                    total += 1;
                    if self.inside(p) != self.inside(q) {
                        differing += 1;
                    }
                }
            }
        }
        differing as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_is_inside_metal_is_not() {
        let g = CavityGeometry::new(CavitySpec::three_cell());
        // Beam axis points within cells are vacuum.
        assert!(g.inside(Vec3::new(0.0, 0.0, 0.4)));
        assert!(g.inside(Vec3::new(0.0, 0.0, 1.2)));
        // Outside the cavity radius (and not in a port) is metal.
        assert!(!g.inside(Vec3::new(0.99, 0.99, 0.4)));
        // Beyond the ends is outside.
        assert!(!g.inside(Vec3::new(0.0, 0.0, -0.1)));
        assert!(!g.inside(Vec3::new(0.0, 0.0, 100.0)));
    }

    #[test]
    fn iris_blocks_off_axis_passage() {
        let g = CavityGeometry::new(CavitySpec::three_cell());
        let z_iris = 0.8; // first interior boundary
                          // On-axis through the iris hole: vacuum.
        assert!(g.inside(Vec3::new(0.0, 0.0, z_iris)));
        // Off-axis at the same z (between iris radius and cavity radius,
        // away from the ports in x): metal.
        assert!(!g.inside(Vec3::new(0.7, 0.0, z_iris)));
        // Same radius inside a cell: vacuum.
        assert!(g.inside(Vec3::new(0.7, 0.0, 0.4)));
    }

    #[test]
    fn ports_punch_through_the_wall() {
        let g = CavityGeometry::new(CavitySpec::three_cell());
        let z_mid = 0.4; // middle of the first cell
                         // Above the cavity radius inside the input port: vacuum.
        assert!(g.inside(Vec3::new(0.0, 1.2, z_mid)));
        // Same point with ports disabled: metal.
        let g2 = CavityGeometry::new(CavitySpec {
            with_ports: false,
            ..CavitySpec::three_cell()
        });
        assert!(!g2.inside(Vec3::new(0.0, 1.2, z_mid)));
    }

    #[test]
    fn ports_break_radial_symmetry() {
        let with = CavityGeometry::new(CavitySpec::three_cell());
        let without = CavityGeometry::new(CavitySpec {
            with_ports: false,
            ..CavitySpec::three_cell()
        });
        let a_with = with.radial_asymmetry(24);
        let a_without = without.radial_asymmetry(24);
        assert!(a_with > a_without, "{a_with} vs {a_without}");
        assert!(a_with > 0.005, "ports must create measurable asymmetry");
        assert!(a_without < 0.01, "portless structure is nearly symmetric");
    }

    #[test]
    fn twelve_cell_is_longer() {
        let s3 = CavitySpec::three_cell();
        let s12 = CavitySpec::twelve_cell();
        assert_eq!(s12.cells, 12);
        assert!((s12.total_length() / s3.total_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn iris_must_be_smaller_than_cavity() {
        let _ = CavityGeometry::new(CavitySpec {
            iris_radius: 2.0,
            ..CavitySpec::three_cell()
        });
    }
}
