//! Courant-condition arithmetic in physical units.
//!
//! "To achieve the needed accuracy, the simulations must not proceed
//! faster than electromagnetic information could physically flow through
//! mesh elements. To satisfy the Courant Condition, simulating 100
//! nanoseconds in the real world requires millions of time steps" (§3);
//! for the 12-cell structure, "steady state at about 40 nanoseconds ...
//! corresponds to 326,700 time steps" (§3.4). These functions reproduce
//! that arithmetic for the FIG9 experiment.

/// Speed of light in vacuum (m/s).
pub const C_LIGHT: f64 = 2.997_924_58e8;

/// The Courant-limited time step for a rectilinear mesh with the given
/// cell edge lengths (meters), scaled by a safety factor `cfl` in (0, 1]:
///
/// `dt = cfl / (c · √(1/dx² + 1/dy² + 1/dz²))`
pub fn courant_dt(dx: f64, dy: f64, dz: f64, cfl: f64) -> f64 {
    assert!(
        dx > 0.0 && dy > 0.0 && dz > 0.0,
        "cell sizes must be positive"
    );
    assert!(cfl > 0.0 && cfl <= 1.0, "cfl must be in (0, 1]");
    cfl / (C_LIGHT * (1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz)).sqrt())
}

/// Number of Courant-limited steps needed to simulate `duration` seconds.
pub fn steps_for_duration(duration: f64, dt: f64) -> u64 {
    assert!(dt > 0.0);
    (duration / dt).ceil() as u64
}

/// The cubic cell edge length that makes `duration` seconds take exactly
/// `steps` Courant-limited steps (inverse of the above, used to infer the
/// paper's effective minimum element size).
pub fn cell_size_for_steps(duration: f64, steps: u64, cfl: f64) -> f64 {
    assert!(steps > 0);
    let dt = duration / steps as f64;
    // dt = cfl·dx/(c·√3)  ⇒  dx = dt·c·√3/cfl
    dt * C_LIGHT * 3.0f64.sqrt() / cfl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_shrinks_with_cell_size() {
        let big = courant_dt(1e-3, 1e-3, 1e-3, 1.0);
        let small = courant_dt(1e-4, 1e-4, 1e-4, 1.0);
        assert!((big / small - 10.0).abs() < 1e-9);
    }

    #[test]
    fn anisotropic_cells_are_limited_by_smallest() {
        let iso = courant_dt(1e-3, 1e-3, 1e-3, 1.0);
        let flat = courant_dt(1e-3, 1e-3, 1e-5, 1.0);
        assert!(flat < iso / 10.0);
    }

    #[test]
    fn paper_step_count_roundtrip() {
        // Infer the effective cell size from the paper's numbers, then
        // verify it reproduces them: 40 ns in 326 700 steps.
        let duration = 40e-9;
        let steps = 326_700u64;
        let dx = cell_size_for_steps(duration, steps, 0.99);
        let dt = courant_dt(dx, dx, dx, 0.99);
        let back = steps_for_duration(duration, dt);
        assert!(
            (back as i64 - steps as i64).unsigned_abs() <= 1,
            "step count must round-trip: {back}"
        );
        // The implied minimum element edge is sub-0.1 mm — which is why the
        // data set would be 26 TB and why the paper stores field lines
        // instead.
        assert!(dx < 1e-4, "implied cell size {dx} m");
        assert!(dx > 1e-5);
    }

    #[test]
    fn hundred_ns_needs_millions_of_steps() {
        // §3: "simulating 100 nanoseconds ... requires millions of time
        // steps" at the implied resolution.
        let dx = cell_size_for_steps(40e-9, 326_700, 0.99);
        let dt = courant_dt(dx, dx, dx, 0.99);
        let steps = steps_for_duration(100e-9, dt);
        assert!(steps > 800_000, "{steps} steps for 100 ns");
    }

    #[test]
    #[should_panic]
    fn invalid_cfl_panics() {
        let _ = courant_dt(1e-3, 1e-3, 1e-3, 1.5);
    }
}
