//! Field snapshot storage accounting.
//!
//! "Since it would take about 80 megabytes of storage space to save one
//! time step of the electric and magnetic fields together, over 26
//! terabytes of storage space would be needed for the overall data set"
//! (§3.4, for the 1.6 M-element, 326 700-step 12-cell run). This module
//! implements the raw per-element E+B layout those numbers come from, so
//! the FIG9/COMPR experiments measure real bytes.

use crate::sample::FieldSampler;
use accelviz_math::Vec3;

/// Bytes per mesh element for one snapshot of E and B together: two
/// 3-vectors of f64.
pub const BYTES_PER_ELEMENT: u64 = 48;

/// Size of one raw E+B snapshot for a mesh of `elements` elements
/// (saturating: terascale arithmetic must not overflow).
pub fn snapshot_bytes(elements: u64) -> u64 {
    elements.saturating_mul(BYTES_PER_ELEMENT)
}

/// Size of a full run: one snapshot per step.
pub fn run_bytes(elements: u64, steps: u64) -> u64 {
    snapshot_bytes(elements).saturating_mul(steps)
}

/// Serializes E+B cell vectors (vacuum cells only) to the raw layout.
pub fn serialize_fields(e: &FieldSampler, b: &FieldSampler) -> Vec<u8> {
    assert_eq!(e.dims(), b.dims(), "field grids must match");
    let [nx, ny, nz] = e.dims();
    let mut out = Vec::new();
    let mut push = |v: Vec3| {
        out.extend_from_slice(&v.x.to_le_bytes());
        out.extend_from_slice(&v.y.to_le_bytes());
        out.extend_from_slice(&v.z.to_le_bytes());
    };
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if e.cell_is_vacuum(i, j, k) {
                    push(e.at_cell(i, j, k));
                    push(b.at_cell(i, j, k));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelviz_math::Aabb;

    #[test]
    fn paper_numbers_reproduce() {
        // 1.6 M elements → ~80 MB per step.
        let per_step = snapshot_bytes(1_600_000);
        let mb = per_step as f64 / 1e6;
        assert!((mb - 76.8).abs() < 0.1, "≈80 MB per step: {mb} MB");
        // × 326 700 steps → ~26 TB.
        let total = run_bytes(1_600_000, 326_700) as f64 / 1e12;
        assert!((total - 25.1).abs() < 0.5, "≈26 TB total: {total} TB");
    }

    #[test]
    fn serialized_size_matches_element_count() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let e = FieldSampler::from_vectors([3, 3, 3], bounds, vec![Vec3::UNIT_X; 27]);
        let b = FieldSampler::from_vectors([3, 3, 3], bounds, vec![Vec3::UNIT_Y; 27]);
        let bytes = serialize_fields(&e, &b);
        assert_eq!(bytes.len() as u64, snapshot_bytes(27));
    }

    #[test]
    fn run_bytes_saturates_instead_of_overflowing() {
        let huge = run_bytes(u64::MAX / 2, u64::MAX / 2);
        assert_eq!(huge, u64::MAX);
    }
}
