//! Field energy and Poynting-flux diagnostics.

use crate::fdtd::FdtdSim;

/// Total electromagnetic energy ½∫(E² + H²) dV over the grid (normalized
/// units), using cell-centered field averages.
pub fn total_energy(sim: &FdtdSim) -> f64 {
    let [nx, ny, nz] = sim.dims();
    let (dx, dy, dz) = sim.spacing();
    let dv = dx * dy * dz;
    let mut sum = 0.0;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let e = sim.e_at_cell(i, j, k);
                let b = sim.b_at_cell(i, j, k);
                sum += e.length_squared() + b.length_squared();
            }
        }
    }
    0.5 * sum * dv
}

/// Energy in the slab `z0 <= z < z1` (world coordinates) — used to watch
/// RF power arrive cell by cell (Figure 8).
pub fn energy_in_z_range(sim: &FdtdSim, z0: f64, z1: f64) -> f64 {
    let [nx, ny, nz] = sim.dims();
    let (dx, dy, dz) = sim.spacing();
    let dv = dx * dy * dz;
    let mut sum = 0.0;
    for k in 0..nz {
        let z = sim.cell_center(0, 0, k).z;
        if z < z0 || z >= z1 {
            continue;
        }
        for j in 0..ny {
            for i in 0..nx {
                let e = sim.e_at_cell(i, j, k);
                let b = sim.b_at_cell(i, j, k);
                sum += e.length_squared() + b.length_squared();
            }
        }
    }
    0.5 * sum * dv
}

/// Net Poynting flux S = E×H through the plane of cells nearest to
/// world-space `z_plane`, positive toward +z.
pub fn poynting_flux_z(sim: &FdtdSim, z_plane: f64) -> f64 {
    let [nx, ny, nz] = sim.dims();
    let (dx, dy, dz) = sim.spacing();
    let da = dx * dy;
    // Find the cell layer containing z_plane.
    let mut best_k = 0;
    let mut best_d = f64::INFINITY;
    for k in 0..nz {
        let d = (sim.cell_center(0, 0, k).z - z_plane).abs();
        if d < best_d {
            best_d = d;
            best_k = k;
        }
    }
    let _ = dz;
    let mut flux = 0.0;
    for j in 0..ny {
        for i in 0..nx {
            let e = sim.e_at_cell(i, j, best_k);
            let b = sim.b_at_cell(i, j, best_k);
            flux += e.cross(b).z * da;
        }
    }
    flux
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cavity::{CavityGeometry, CavitySpec};
    use crate::fdtd::FdtdSpec;
    use accelviz_math::Vec3;

    fn quiet_sim() -> FdtdSim {
        let spec = CavitySpec {
            with_ports: false,
            ..CavitySpec::three_cell()
        };
        let mut fspec = FdtdSpec::for_geometry(CavityGeometry::new(spec), 10);
        fspec.drive_amplitude = 0.0;
        fspec.sponge_strength = 0.0;
        FdtdSim::new(fspec)
    }

    #[test]
    fn energy_is_zero_then_positive() {
        let mut sim = quiet_sim();
        assert_eq!(total_energy(&sim), 0.0);
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.3, 1.0);
        assert!(total_energy(&sim) > 0.0);
    }

    #[test]
    fn slab_energies_sum_to_total() {
        let mut sim = quiet_sim();
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 1.2), 0.4, 1.0);
        sim.run(30);
        let total = total_energy(&sim);
        let b = sim.spec().geometry.bounds;
        let thirds = [
            energy_in_z_range(&sim, b.min.z, b.min.z + b.size().z / 3.0),
            energy_in_z_range(
                &sim,
                b.min.z + b.size().z / 3.0,
                b.min.z + 2.0 * b.size().z / 3.0,
            ),
            energy_in_z_range(&sim, b.min.z + 2.0 * b.size().z / 3.0, b.max.z + 1e-9),
        ];
        let sum: f64 = thirds.iter().sum();
        assert!((sum / total - 1.0).abs() < 1e-9, "{sum} vs {total}");
    }

    #[test]
    fn driven_port_sends_power_downstream() {
        let geometry = CavityGeometry::new(CavitySpec::three_cell());
        let fspec = FdtdSpec::for_geometry(geometry, 12);
        let mut sim = FdtdSim::new(fspec);
        let len = sim.spec().geometry.spec.total_length();
        // Skip the filling transient, then time-average the flux over many
        // RF periods: in steady state everything crossing this plane is
        // absorbed by the downstream output-port termination, so the mean
        // must point toward the output end.
        sim.run(1200);
        let window = 2500;
        let mut acc = 0.0;
        for _ in 0..window {
            sim.step();
            acc += poynting_flux_z(&sim, len / 2.0);
        }
        let mean_flux = acc / window as f64;
        // Power enters the first cell and must on average flow toward the
        // output end (+z).
        assert!(
            mean_flux > 0.0,
            "mean Poynting flux must point downstream: {mean_flux}"
        );
    }
}
