//! Yee/FIT time-domain Maxwell solver with staircase PEC boundaries, port
//! excitation, and sponge absorption.
//!
//! Normalized units: c = 1, vacuum impedance 1, so the update equations
//! are `H ← H − dt·∇×E`, `E ← E + dt·∇×H`. On a rectilinear grid the
//! finite-integration formulation the paper's solver (Tau3P) uses reduces
//! exactly to this Yee scheme.

use crate::cavity::CavityGeometry;
use accelviz_math::Vec3;
use rayon::prelude::*;

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct FdtdSpec {
    /// The cavity geometry (PEC everywhere `inside` is false).
    pub geometry: CavityGeometry,
    /// Grid resolution (cells per axis).
    pub dims: [usize; 3],
    /// Courant safety factor in (0, 1].
    pub cfl: f64,
    /// Drive angular frequency (normalized units).
    pub drive_frequency: f64,
    /// Drive amplitude.
    pub drive_amplitude: f64,
    /// Sponge absorption strength per step at the port mouths (0 = none).
    pub sponge_strength: f64,
}

impl FdtdSpec {
    /// A ready-to-run configuration for a geometry: resolution `res` cells
    /// across the cavity diameter, driven near the fundamental mode.
    pub fn for_geometry(geometry: CavityGeometry, res: usize) -> FdtdSpec {
        let size = geometry.bounds.size();
        let dx = 2.0 * geometry.spec.cavity_radius / res as f64;
        let dims = [
            (size.x / dx).ceil() as usize,
            (size.y / dx).ceil() as usize,
            (size.z / dx).ceil() as usize,
        ];
        // TM010 frequency of a pillbox of radius R: ω = 2.405 c / R.
        let omega = 2.405 / geometry.spec.cavity_radius;
        FdtdSpec {
            geometry,
            dims,
            cfl: 0.9,
            drive_frequency: omega,
            drive_amplitude: 1.0,
            sponge_strength: 0.05,
        }
    }
}

/// The running solver state.
pub struct FdtdSim {
    spec: FdtdSpec,
    nx: usize,
    ny: usize,
    nz: usize,
    dx: f64,
    dy: f64,
    dz: f64,
    dt: f64,
    /// Field arrays on the Yee grid, each sized (nx+1)(ny+1)(nz+1).
    ex: Vec<f64>,
    ey: Vec<f64>,
    ez: Vec<f64>,
    hx: Vec<f64>,
    hy: Vec<f64>,
    hz: Vec<f64>,
    /// Per-cell vacuum flag (nx·ny·nz).
    cell_inside: Vec<bool>,
    /// Edge-activity masks for E components (same layout as fields).
    ex_mask: Vec<bool>,
    ey_mask: Vec<bool>,
    ez_mask: Vec<bool>,
    /// Per-node damping factor (1 = no absorption).
    sponge: Vec<f64>,
    /// Node indices receiving the drive current (Ez component).
    drive_nodes: Vec<usize>,
    time: f64,
    steps: u64,
}

impl FdtdSim {
    /// Builds the solver: rasterizes the geometry, derives masks, the
    /// Courant step, the sponge profile, and the drive region.
    pub fn new(spec: FdtdSpec) -> FdtdSim {
        let [nx, ny, nz] = spec.dims;
        assert!(
            nx >= 4 && ny >= 4 && nz >= 4,
            "grid too small: {:?}",
            spec.dims
        );
        let b = spec.geometry.bounds;
        let size = b.size();
        let (dx, dy, dz) = (size.x / nx as f64, size.y / ny as f64, size.z / nz as f64);
        // Normalized Courant condition (c = 1).
        let dt = spec.cfl / (1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz)).sqrt();

        let n_nodes = (nx + 1) * (ny + 1) * (nz + 1);
        let cidx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
        let mut cell_inside = vec![false; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = b.min
                        + Vec3::new(
                            (i as f64 + 0.5) * dx,
                            (j as f64 + 0.5) * dy,
                            (k as f64 + 0.5) * dz,
                        );
                    cell_inside[cidx(i, j, k)] = spec.geometry.inside(c);
                }
            }
        }

        // E-edge masks: an edge is active only when all four adjacent
        // cells exist and are vacuum (staircase PEC).
        let nidx = |i: usize, j: usize, k: usize| i + (nx + 1) * (j + (ny + 1) * k);
        let cell_ok = |i: isize, j: isize, k: isize| -> bool {
            if i < 0 || j < 0 || k < 0 || i >= nx as isize || j >= ny as isize || k >= nz as isize {
                return false;
            }
            cell_inside[cidx(i as usize, j as usize, k as usize)]
        };
        let mut ex_mask = vec![false; n_nodes];
        let mut ey_mask = vec![false; n_nodes];
        let mut ez_mask = vec![false; n_nodes];
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    let ni = nidx(i, j, k);
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    if i < nx {
                        ex_mask[ni] = cell_ok(ii, jj - 1, kk - 1)
                            && cell_ok(ii, jj, kk - 1)
                            && cell_ok(ii, jj - 1, kk)
                            && cell_ok(ii, jj, kk);
                    }
                    if j < ny {
                        ey_mask[ni] = cell_ok(ii - 1, jj, kk - 1)
                            && cell_ok(ii, jj, kk - 1)
                            && cell_ok(ii - 1, jj, kk)
                            && cell_ok(ii, jj, kk);
                    }
                    if k < nz {
                        ez_mask[ni] = cell_ok(ii - 1, jj - 1, kk)
                            && cell_ok(ii, jj - 1, kk)
                            && cell_ok(ii - 1, jj, kk)
                            && cell_ok(ii, jj, kk);
                    }
                }
            }
        }

        // Sponge: absorb in the outer 35% of the port channels (top/bottom
        // of the domain in y), emulating matched waveguide terminations.
        let mut sponge = vec![1.0; n_nodes];
        if spec.geometry.spec.with_ports && spec.sponge_strength > 0.0 {
            let y_top = b.max.y;
            let y_bot = b.min.y;
            let depth = 0.35 * spec.geometry.spec.cavity_radius;
            for k in 0..=nz {
                for j in 0..=ny {
                    let y = b.min.y + j as f64 * dy;
                    let d_top = (y - (y_top - depth)).max(0.0) / depth;
                    let d_bot = ((y_bot + depth) - y).max(0.0) / depth;
                    let d = d_top.max(d_bot).min(1.0);
                    if d > 0.0 {
                        let f = (-spec.sponge_strength * d * d).exp();
                        for i in 0..=nx {
                            sponge[nidx(i, j, k)] = f;
                        }
                    }
                }
            }
        }

        // Drive: Ez current sheet across the input ports, just above/below
        // the cavity wall.
        let mut drive_nodes = Vec::new();
        if spec.geometry.spec.with_ports {
            let r = spec.geometry.spec.cavity_radius;
            for &(port, y_drive) in &[
                (&spec.geometry.input_port, r + 0.2 * r),
                (&spec.geometry.input_port_lower, -r - 0.2 * r),
            ] {
                let j = ((y_drive - b.min.y) / dy).round() as usize;
                for k in 0..nz {
                    for i in 0..=nx {
                        let x = b.min.x + i as f64 * dx;
                        let z = b.min.z + (k as f64 + 0.5) * dz;
                        let p = Vec3::new(x, y_drive, z);
                        if port.contains(p) {
                            let ni = nidx(i, j.min(ny), k);
                            if ez_mask[ni] {
                                drive_nodes.push(ni);
                            }
                        }
                    }
                }
            }
        }

        FdtdSim {
            spec,
            nx,
            ny,
            nz,
            dx,
            dy,
            dz,
            dt,
            ex: vec![0.0; n_nodes],
            ey: vec![0.0; n_nodes],
            ez: vec![0.0; n_nodes],
            hx: vec![0.0; n_nodes],
            hy: vec![0.0; n_nodes],
            hz: vec![0.0; n_nodes],
            cell_inside,
            ex_mask,
            ey_mask,
            ez_mask,
            sponge,
            drive_nodes,
            time: 0.0,
            steps: 0,
        }
    }

    /// The time step (normalized units).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Elapsed simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Grid dimensions in cells.
    pub fn dims(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Cell edge lengths.
    pub fn spacing(&self) -> (f64, f64, f64) {
        (self.dx, self.dy, self.dz)
    }

    /// The configuration.
    pub fn spec(&self) -> &FdtdSpec {
        &self.spec
    }

    /// Number of vacuum cells (the "mesh elements" of the unstructured
    /// view).
    pub fn vacuum_cell_count(&self) -> usize {
        self.cell_inside.iter().filter(|&&c| c).count()
    }

    /// Per-cell vacuum flags (x-fastest layout).
    pub fn cell_inside(&self) -> &[bool] {
        &self.cell_inside
    }

    #[inline]
    fn nidx(&self, i: usize, j: usize, k: usize) -> usize {
        i + (self.nx + 1) * (j + (self.ny + 1) * k)
    }

    /// Seeds an initial Ez bump (Gaussian ball of radius `r` at `center`)
    /// for ring-down tests without port drive.
    pub fn seed_ez_bump(&mut self, center: Vec3, r: f64, amplitude: f64) {
        let b = self.spec.geometry.bounds;
        for k in 0..self.nz {
            for j in 0..=self.ny {
                for i in 0..=self.nx {
                    let p = b.min
                        + Vec3::new(
                            i as f64 * self.dx,
                            j as f64 * self.dy,
                            (k as f64 + 0.5) * self.dz,
                        );
                    let d2 = p.distance(center).powi(2) / (r * r);
                    if d2 < 9.0 {
                        let ni = self.nidx(i, j, k);
                        if self.ez_mask[ni] {
                            self.ez[ni] += amplitude * (-d2).exp();
                        }
                    }
                }
            }
        }
    }

    /// Advances one time step: H half-update from ∇×E, E update from ∇×H
    /// with PEC masks, sponge damping, and the port drive.
    pub fn step(&mut self) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let stride_j = nx + 1;
        let stride_k = (nx + 1) * (ny + 1);
        let (dx, dy, dz, dt) = (self.dx, self.dy, self.dz, self.dt);

        // --- H update: H ← H − dt ∇×E ---
        {
            let (ex, ey, ez) = (&self.ex, &self.ey, &self.ez);
            let hx = &mut self.hx;
            let hy = &mut self.hy;
            let hz = &mut self.hz;
            let plane = stride_k;
            hx.par_chunks_mut(plane)
                .zip(hy.par_chunks_mut(plane))
                .zip(hz.par_chunks_mut(plane))
                .enumerate()
                .for_each(|(k, ((hxp, hyp), hzp))| {
                    if k > nz {
                        return;
                    }
                    for j in 0..=ny {
                        for i in 0..=nx {
                            let n = i + stride_j * j;
                            let g = n + k * stride_k;
                            // Hx at (i, j+½, k+½): needs j<ny, k<nz.
                            if j < ny && k < nz {
                                let curl = (ez[g + stride_j] - ez[g]) / dy
                                    - (ey[g + stride_k] - ey[g]) / dz;
                                hxp[n] -= dt * curl;
                            }
                            // Hy at (i+½, j, k+½): needs i<nx, k<nz.
                            if i < nx && k < nz {
                                let curl =
                                    (ex[g + stride_k] - ex[g]) / dz - (ez[g + 1] - ez[g]) / dx;
                                hyp[n] -= dt * curl;
                            }
                            // Hz at (i+½, j+½, k): needs i<nx, j<ny.
                            if i < nx && j < ny {
                                let curl =
                                    (ey[g + 1] - ey[g]) / dx - (ex[g + stride_j] - ex[g]) / dy;
                                hzp[n] -= dt * curl;
                            }
                        }
                    }
                });
        }

        // --- E update: E ← E + dt ∇×H, masked ---
        {
            let (hx, hy, hz) = (&self.hx, &self.hy, &self.hz);
            let (ex_mask, ey_mask, ez_mask) = (&self.ex_mask, &self.ey_mask, &self.ez_mask);
            let ex = &mut self.ex;
            let ey = &mut self.ey;
            let ez = &mut self.ez;
            let plane = stride_k;
            ex.par_chunks_mut(plane)
                .zip(ey.par_chunks_mut(plane))
                .zip(ez.par_chunks_mut(plane))
                .enumerate()
                .for_each(|(k, ((exp, eyp), ezp))| {
                    if k > nz {
                        return;
                    }
                    for j in 0..=ny {
                        for i in 0..=nx {
                            let n = i + stride_j * j;
                            let g = n + k * stride_k;
                            // Ex at (i+½, j, k): interior j, k only.
                            if i < nx && j >= 1 && k >= 1 && j <= ny && k <= nz {
                                if ex_mask[g] {
                                    let curl = (hz[g] - hz[g - stride_j]) / dy
                                        - (hy[g] - hy[g - stride_k]) / dz;
                                    exp[n] += dt * curl;
                                } else {
                                    exp[n] = 0.0;
                                }
                            }
                            // Ey at (i, j+½, k).
                            if j < ny && i >= 1 && k >= 1 && i <= nx && k <= nz {
                                if ey_mask[g] {
                                    let curl =
                                        (hx[g] - hx[g - stride_k]) / dz - (hz[g] - hz[g - 1]) / dx;
                                    eyp[n] += dt * curl;
                                } else {
                                    eyp[n] = 0.0;
                                }
                            }
                            // Ez at (i, j, k+½).
                            if k < nz && i >= 1 && j >= 1 && i <= nx && j <= ny {
                                if ez_mask[g] {
                                    let curl =
                                        (hy[g] - hy[g - 1]) / dx - (hx[g] - hx[g - stride_j]) / dy;
                                    ezp[n] += dt * curl;
                                } else {
                                    ezp[n] = 0.0;
                                }
                            }
                        }
                    }
                });
        }

        // --- Sponge damping ---
        if self.spec.sponge_strength > 0.0 {
            let sponge = &self.sponge;
            for field in [
                &mut self.ex,
                &mut self.ey,
                &mut self.ez,
                &mut self.hx,
                &mut self.hy,
                &mut self.hz,
            ] {
                field
                    .par_iter_mut()
                    .zip(sponge.par_iter())
                    .for_each(|(f, &s)| {
                        if s < 1.0 {
                            *f *= s;
                        }
                    });
            }
        }

        // --- Port drive (soft source on Ez) ---
        if !self.drive_nodes.is_empty() && self.spec.drive_amplitude != 0.0 {
            let omega = self.spec.drive_frequency;
            let t = self.time + self.dt;
            // Smooth turn-on over ~3 RF periods.
            let ramp_t = 3.0 * std::f64::consts::TAU / omega;
            let envelope = (1.0 - (-t / ramp_t).exp()).powi(2);
            let drive = self.spec.drive_amplitude * envelope * (omega * t).sin() * self.dt;
            for &n in &self.drive_nodes {
                self.ez[n] += drive;
            }
        }

        self.time += self.dt;
        self.steps += 1;
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Extracts the unstructured hexahedral-mesh view of the vacuum
    /// region — the element list Tau3P-style postprocessing (seeding,
    /// storage accounting) operates on. Element order matches the
    /// x-fastest cell order used by [`crate::io::serialize_fields`].
    pub fn extract_mesh(&self) -> crate::mesh::HexMesh {
        let geometry = &self.spec.geometry;
        crate::mesh::HexMesh::from_grid_mask(geometry.bounds, [self.nx, self.ny, self.nz], |p| {
            geometry.inside(p)
        })
    }

    /// Maximum magnitude of the discrete divergence of H over all interior
    /// dual cells. The Yee update preserves div H = 0 exactly (the curl of
    /// E is discretely divergence-free), so this must stay at rounding
    /// level no matter how long the simulation runs — the solver's
    /// sharpest structural invariant.
    pub fn max_divergence_h(&self) -> f64 {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let sj = nx + 1;
        let sk = (nx + 1) * (ny + 1);
        let mut max_div: f64 = 0.0;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let n = self.nidx(i, j, k);
                    // Hx faces at i and i+1, Hy at j and j+1, Hz at k, k+1.
                    let div = (self.hx[n + 1] - self.hx[n]) / self.dx
                        + (self.hy[n + sj] - self.hy[n]) / self.dy
                        + (self.hz[n + sk] - self.hz[n]) / self.dz;
                    max_div = max_div.max(div.abs());
                }
            }
        }
        max_div
    }

    /// Cell-centered E vector at cell (i, j, k) (averaging the staggered
    /// components).
    pub fn e_at_cell(&self, i: usize, j: usize, k: usize) -> Vec3 {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        let n = self.nidx(i, j, k);
        let sj = self.nx + 1;
        let sk = (self.nx + 1) * (self.ny + 1);
        Vec3::new(
            0.25 * (self.ex[n] + self.ex[n + sj] + self.ex[n + sk] + self.ex[n + sj + sk]),
            0.25 * (self.ey[n] + self.ey[n + 1] + self.ey[n + sk] + self.ey[n + 1 + sk]),
            0.25 * (self.ez[n] + self.ez[n + 1] + self.ez[n + sj] + self.ez[n + 1 + sj]),
        )
    }

    /// Cell-centered H (≡ B in normalized units) vector at cell (i, j, k).
    pub fn b_at_cell(&self, i: usize, j: usize, k: usize) -> Vec3 {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        let n = self.nidx(i, j, k);
        let sj = self.nx + 1;
        let sk = (self.nx + 1) * (self.ny + 1);
        Vec3::new(
            0.5 * (self.hx[n] + self.hx[n + 1]),
            0.5 * (self.hy[n] + self.hy[n + sj]),
            0.5 * (self.hz[n] + self.hz[n + sk]),
        )
    }

    /// World position of the center of cell (i, j, k).
    pub fn cell_center(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.spec.geometry.bounds.min
            + Vec3::new(
                (i as f64 + 0.5) * self.dx,
                (j as f64 + 0.5) * self.dy,
                (k as f64 + 0.5) * self.dz,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cavity::{CavityGeometry, CavitySpec};
    use crate::energy::{energy_in_z_range, total_energy};

    fn closed_cavity_sim(res: usize) -> FdtdSim {
        let spec = CavitySpec {
            with_ports: false,
            ..CavitySpec::three_cell()
        };
        let geometry = CavityGeometry::new(spec);
        let mut fspec = FdtdSpec::for_geometry(geometry, res);
        fspec.drive_amplitude = 0.0;
        fspec.sponge_strength = 0.0;
        FdtdSim::new(fspec)
    }

    #[test]
    fn fields_start_at_zero_with_zero_energy() {
        let sim = closed_cavity_sim(10);
        assert_eq!(total_energy(&sim), 0.0);
        assert!(sim.vacuum_cell_count() > 0);
    }

    #[test]
    fn closed_cavity_ringdown_conserves_energy() {
        let mut sim = closed_cavity_sim(12);
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.3, 1.0);
        // The collocated energy measure oscillates (E and H live on
        // staggered half-steps), so compare window averages: no secular
        // drift is allowed over ~1000 further steps.
        let window_mean = |sim: &mut FdtdSim| -> f64 {
            let mut acc = 0.0;
            for _ in 0..10 {
                sim.run(10);
                acc += total_energy(sim);
            }
            acc / 10.0
        };
        sim.run(50);
        let e0 = window_mean(&mut sim);
        assert!(e0 > 0.0);
        sim.run(800);
        let e1 = window_mean(&mut sim);
        assert!((e1 / e0 - 1.0).abs() < 0.10, "energy drifted: {e0} → {e1}");
    }

    #[test]
    fn unstable_cfl_blows_up() {
        let spec = CavitySpec {
            with_ports: false,
            ..CavitySpec::three_cell()
        };
        let geometry = CavityGeometry::new(spec);
        let mut fspec = FdtdSpec::for_geometry(geometry, 10);
        fspec.cfl = 1.0;
        fspec.drive_amplitude = 0.0;
        fspec.sponge_strength = 0.0;
        // Manually break the Courant condition by scaling dt via cfl > 1:
        // the constructor clamps nothing, so emulate by taking legal dt
        // and stepping a sim whose cfl pushes past the 3-D limit.
        let mut sim = FdtdSim::new(FdtdSpec {
            cfl: 1.0,
            ..fspec.clone()
        });
        // cfl = 1.0 is exactly at the limit for isotropic cells and still
        // stable; emulate instability with a >1 factor through dt scaling.
        sim.dt *= 1.2;
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.3, 1.0);
        sim.run(50);
        let e0 = total_energy(&sim);
        sim.run(300);
        let e1 = total_energy(&sim);
        assert!(
            e1 > 100.0 * e0,
            "super-Courant stepping must diverge: {e0} → {e1}"
        );
    }

    #[test]
    fn tangential_e_vanishes_on_metal() {
        let mut sim = closed_cavity_sim(12);
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.4, 1.0);
        sim.run(200);
        // Sample E at cell centers in metal: must be identically zero.
        let [nx, ny, nz] = sim.dims();
        let mut metal_max: f64 = 0.0;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if !sim.cell_inside()[i + nx * (j + ny * k)] {
                        // Fully-metal cells: all surrounding masked edges
                        // are zero, so the averaged vector is zero.
                        let neighbors_metal = |di: isize, dj: isize, dk: isize| -> bool {
                            let (a, b_, c) = (i as isize + di, j as isize + dj, k as isize + dk);
                            if a < 0
                                || b_ < 0
                                || c < 0
                                || a >= nx as isize
                                || b_ >= ny as isize
                                || c >= nz as isize
                            {
                                return true;
                            }
                            !sim.cell_inside()[a as usize + nx * (b_ as usize + ny * c as usize)]
                        };
                        let deep_metal = (-1..=1).all(|di| {
                            (-1..=1).all(|dj| (-1..=1).all(|dk| neighbors_metal(di, dj, dk)))
                        });
                        if deep_metal {
                            metal_max = metal_max.max(sim.e_at_cell(i, j, k).length());
                        }
                    }
                }
            }
        }
        assert!(metal_max < 1e-12, "E leaked into metal: {metal_max}");
    }

    #[test]
    fn driven_structure_gains_energy_and_waves_reach_the_far_cell() {
        let geometry = CavityGeometry::new(CavitySpec::three_cell());
        let spec = FdtdSpec::for_geometry(geometry, 12);
        let mut sim = FdtdSim::new(spec);
        let len = sim.spec().geometry.spec.total_length();
        // Energy in the last cell starts at zero.
        let far0 = energy_in_z_range(&sim, 2.0 * len / 3.0, len);
        assert_eq!(far0, 0.0);
        // Run several hundred steps: the drive pumps the structure and the
        // wave propagates through the irises into the far cell.
        sim.run(600);
        let far1 = energy_in_z_range(&sim, 2.0 * len / 3.0, len);
        let total = total_energy(&sim);
        assert!(total > 0.0);
        assert!(
            far1 > 1e-9 * total.max(1e-30),
            "wave must reach the far cell: {far1} of {total}"
        );
    }

    #[test]
    fn port_sponges_absorb_energy_that_closed_walls_keep() {
        // Matched-termination behavior: the same initial bump decays in
        // the open (ported + sponged) structure and persists in the
        // closed one.
        let make = |with_ports: bool, sponge: f64| -> FdtdSim {
            let spec = CavitySpec {
                with_ports,
                ..CavitySpec::three_cell()
            };
            let geometry = CavityGeometry::new(spec);
            let mut fspec = FdtdSpec::for_geometry(geometry, 12);
            fspec.drive_amplitude = 0.0;
            fspec.sponge_strength = sponge;
            FdtdSim::new(fspec)
        };
        let mut open = make(true, 0.2);
        let mut closed = make(false, 0.0);
        for sim in [&mut open, &mut closed] {
            sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.4, 1.0);
        }
        let e_open_0 = total_energy(&open);
        let e_closed_0 = total_energy(&closed);
        open.run(4000);
        closed.run(4000);
        let open_kept = total_energy(&open) / e_open_0;
        let closed_kept = total_energy(&closed) / e_closed_0;
        // The ports are narrow, so the cavity Q is high — but the leak
        // must be clearly visible against the closed structure's
        // conservation.
        assert!(
            open_kept < 0.8 * closed_kept,
            "ported structure must leak energy: kept {open_kept:.3} vs closed {closed_kept:.3}"
        );
        assert!(
            closed_kept > 0.85,
            "closed structure must conserve: {closed_kept:.3}"
        );
    }

    #[test]
    fn dt_respects_courant() {
        let sim = closed_cavity_sim(10);
        let (dx, dy, dz) = sim.spacing();
        let limit = 1.0 / (1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz)).sqrt();
        assert!(sim.dt() <= limit + 1e-15);
        assert!(sim.dt() > 0.5 * limit);
    }

    #[test]
    fn divergence_of_h_stays_at_rounding_level_without_absorption() {
        // The Yee scheme's structural invariant: ∇·H = 0 exactly for the
        // lossless update (the drive only touches Ez, and the curl of E is
        // discretely divergence-free). The sponge is an absorbing medium
        // whose spatially varying damping deliberately gives this up, so
        // the check applies to the sponge-free configuration.
        let mut sim = closed_cavity_sim(10);
        assert_eq!(sim.max_divergence_h(), 0.0);
        sim.seed_ez_bump(Vec3::new(0.0, 0.0, 0.4), 0.4, 1.0);
        sim.run(500);
        let field_scale = {
            let b = crate::sample::FieldSampler::capture(&sim, crate::sample::FieldKind::Magnetic);
            b.max_magnitude().max(1e-300)
        };
        let div = sim.max_divergence_h();
        assert!(
            div < 1e-10 * field_scale / sim.spacing().0,
            "div H must vanish: {div} vs field scale {field_scale}"
        );
    }

    #[test]
    fn sponge_is_the_only_divergence_source() {
        // With ports + sponge, div H is nonzero only in the absorbing
        // layers; the cavity interior stays divergence-free.
        let geometry = CavityGeometry::new(CavitySpec::three_cell());
        let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 10));
        sim.run(400);
        // Recompute the divergence only over cells well inside the cavity
        // (|y| below the sponge onset).
        let [nx, ny, nz] = sim.dims();
        let sj = nx + 1;
        let sk = (nx + 1) * (ny + 1);
        let (dx, dy, dz) = sim.spacing();
        let sponge_onset = sim.spec().geometry.bounds.max.y - 0.35;
        let mut interior_max: f64 = 0.0;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = sim.cell_center(i, j, k);
                    if c.y.abs() > sponge_onset - 2.0 * dy {
                        continue;
                    }
                    let n = i + sj * j + sk * k;
                    let div = (sim.hx[n + 1] - sim.hx[n]) / dx
                        + (sim.hy[n + sj] - sim.hy[n]) / dy
                        + (sim.hz[n + sk] - sim.hz[n]) / dz;
                    interior_max = interior_max.max(div.abs());
                }
            }
        }
        let total_max = sim.max_divergence_h();
        assert!(
            interior_max < 1e-6 * total_max.max(1e-300),
            "interior div {interior_max} vs sponge div {total_max}"
        );
    }

    #[test]
    fn extracted_mesh_matches_vacuum_cells() {
        let sim = closed_cavity_sim(10);
        let mesh = sim.extract_mesh();
        assert_eq!(mesh.element_count(), sim.vacuum_cell_count());
        // Every element center must be vacuum per the geometry predicate.
        for e in (0..mesh.element_count()).step_by(97) {
            assert!(sim.spec().geometry.inside(mesh.element_center(e)));
        }
    }

    #[test]
    fn mesh_element_count_scales_with_resolution() {
        let a = closed_cavity_sim(8).vacuum_cell_count();
        let b = closed_cavity_sim(16).vacuum_cell_count();
        // Doubling resolution multiplies vacuum cells by ~8.
        let ratio = b as f64 / a as f64;
        assert!(ratio > 5.0 && ratio < 11.0, "ratio {ratio}");
    }
}
