//! Property-based tests of the linear-algebra core.

use accelviz_math::{approx_eq, Aabb, Mat4, Quat, Ray, Vec3};
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_rotation() -> impl Strategy<Value = Quat> {
    (arb_vec3(1.0), -3.0..3.0f64).prop_filter_map("nonzero axis", |(axis, angle)| {
        if axis.length() < 1e-3 {
            None
        } else {
            Some(Quat::from_axis_angle(axis, angle))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invertible transform chains invert exactly.
    #[test]
    fn mat4_inverse_roundtrips(
        t in arb_vec3(10.0),
        angle in -3.0..3.0f64,
        s in 0.1..5.0f64,
        p in arb_vec3(10.0),
    ) {
        let m = Mat4::translation(t) * Mat4::rotation_y(angle) * Mat4::scale(Vec3::splat(s));
        let inv = m.inverse().expect("composed TRS is invertible");
        let q = inv.transform_point(m.transform_point(p));
        prop_assert!(q.distance(p) < 1e-6 * (1.0 + p.length()), "{q} vs {p}");
    }

    /// Rotations preserve lengths and dot products.
    #[test]
    fn quaternion_rotation_is_an_isometry(
        q in arb_rotation(),
        a in arb_vec3(10.0),
        b in arb_vec3(10.0),
    ) {
        let ra = q.rotate(a);
        let rb = q.rotate(b);
        prop_assert!(approx_eq(ra.length(), a.length(), 1e-9));
        prop_assert!(approx_eq(ra.dot(rb), a.dot(b), 1e-6));
    }

    /// Quaternion → matrix and direct rotation agree.
    #[test]
    fn quat_matrix_consistency(q in arb_rotation(), v in arb_vec3(5.0)) {
        let direct = q.rotate(v);
        let via_matrix = q.to_mat4().transform_point(v);
        prop_assert!(direct.distance(via_matrix) < 1e-9 * (1.0 + v.length()));
    }

    /// Composition order: (a·b) rotates like b-then-a.
    #[test]
    fn quat_composition(a in arb_rotation(), b in arb_rotation(), v in arb_vec3(5.0)) {
        let composed = (a * b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        prop_assert!(composed.distance(sequential) < 1e-9 * (1.0 + v.length()));
    }

    /// Ray-box slab intersection: reported interval endpoints really lie
    /// on/in the box, and misses really miss.
    #[test]
    fn ray_box_interval_is_sound(
        bmin in arb_vec3(5.0),
        size in (0.1..5.0f64, 0.1..5.0f64, 0.1..5.0f64),
        origin in arb_vec3(10.0),
        dir in arb_vec3(1.0),
    ) {
        prop_assume!(dir.length() > 1e-3);
        let b = Aabb::new(bmin, bmin + Vec3::new(size.0, size.1, size.2));
        let ray = Ray::new(origin, dir);
        if let Some((t0, t1)) = b.intersect_ray(&ray) {
            prop_assert!(t0 <= t1);
            prop_assert!(t0 >= 0.0);
            let eps = 1e-6 * (1.0 + origin.length() + b.longest_edge());
            let grown = Aabb::new(
                b.min - Vec3::splat(eps),
                b.max + Vec3::splat(eps),
            );
            prop_assert!(grown.contains(ray.at(t0)), "entry point off the box");
            prop_assert!(grown.contains(ray.at(t1)), "exit point off the box");
            // Midpoint of the interval is inside.
            prop_assert!(grown.contains(ray.at((t0 + t1) / 2.0)));
        } else {
            // A miss means sampling along the ray never lands inside.
            for i in 0..50 {
                let t = i as f64 * 0.5;
                prop_assert!(
                    !b.contains_half_open(ray.at(t)),
                    "reported miss but ray enters at t = {t}"
                );
            }
        }
    }

    /// lerp is exact at endpoints and monotone between them.
    #[test]
    fn vec_lerp_endpoints(a in arb_vec3(10.0), b in arb_vec3(10.0), t in 0.0..1.0f64) {
        prop_assert!(a.lerp(b, 0.0).distance(a) < 1e-12);
        prop_assert!(a.lerp(b, 1.0).distance(b) < 1e-12);
        let m = a.lerp(b, t);
        // The interpolant lies within the bounding box of the endpoints.
        let bb = Aabb::from_points([a, b]);
        let grown = Aabb::new(bb.min - Vec3::splat(1e-9), bb.max + Vec3::splat(1e-9));
        prop_assert!(grown.contains(m));
    }

    /// Welford merge equals sequential accumulation for any split.
    #[test]
    fn online_stats_merge_any_split(
        data in prop::collection::vec(-100.0..100.0f64, 2..60),
        split_frac in 0.0..1.0f64,
    ) {
        use accelviz_math::OnlineStats;
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!(approx_eq(a.mean(), whole.mean(), 1e-9));
        prop_assert!(approx_eq(a.variance(), whole.variance(), 1e-6));
    }
}
