//! Unit quaternions for interactive camera orbiting.

use crate::mat4::Mat4;
use crate::vec3::Vec3;
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`, used to represent rotations for the
/// interactive trackball camera in the viewer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// i coefficient.
    pub x: f64,
    /// j coefficient.
    pub y: f64,
    /// k coefficient.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Quaternion from components.
    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Quat {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about (not necessarily unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        let axis = axis.normalized_or(Vec3::UNIT_Z);
        let (s, c) = (angle / 2.0).sin_cos();
        Quat::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Unit-norm copy. Falls back to identity for degenerate input.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n <= 1e-300 {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// Conjugate (inverse rotation for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q v q* expanded to avoid constructing intermediate quats.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Converts to a rotation matrix.
    pub fn to_mat4(self) -> Mat4 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat4::from_cols([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y + w * z),
                2.0 * (x * z - w * y),
                0.0,
            ],
            [
                2.0 * (x * y - w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z + w * x),
                0.0,
            ],
            [
                2.0 * (x * z + w * y),
                2.0 * (y * z - w * x),
                1.0 - 2.0 * (x * x + y * y),
                0.0,
            ],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Spherical linear interpolation between two unit quaternions.
    pub fn slerp(self, other: Quat, t: f64) -> Quat {
        let mut b = other;
        let mut dot = self.w * b.w + self.x * b.x + self.y * b.y + self.z * b.z;
        // Take the short arc.
        if dot < 0.0 {
            b = Quat::new(-b.w, -b.x, -b.y, -b.z);
            dot = -dot;
        }
        if dot > 0.9995 {
            // Nearly parallel: fall back to nlerp.
            return Quat::new(
                self.w + t * (b.w - self.w),
                self.x + t * (b.x - self.x),
                self.y + t * (b.y - self.y),
                self.z + t * (b.z - self.z),
            )
            .normalized();
        }
        let theta0 = dot.acos();
        let theta = theta0 * t;
        let (s, c) = theta.sin_cos();
        let s0 = c - dot * s / theta0.sin();
        let s1 = s / theta0.sin();
        Quat::new(
            self.w * s0 + b.w * s1,
            self.x * s0 + b.x * s1,
            self.y * s0 + b.y * s1,
            self.z * s0 + b.z * s1,
        )
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, o: Quat) -> Quat {
        Quat::new(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(Quat::IDENTITY.rotate(v).distance(v) < 1e-15);
    }

    #[test]
    fn axis_angle_quarter_turn() {
        let q = Quat::from_axis_angle(Vec3::UNIT_Z, std::f64::consts::FRAC_PI_2);
        assert!(q.rotate(Vec3::UNIT_X).distance(Vec3::UNIT_Y) < 1e-12);
    }

    #[test]
    fn rotation_matches_matrix() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 1.234);
        let m = q.to_mat4();
        for v in [Vec3::UNIT_X, Vec3::UNIT_Y, Vec3::new(0.5, -2.0, 1.0)] {
            assert!(q.rotate(v).distance(m.transform_point(v)) < 1e-12);
        }
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_axis_angle(Vec3::UNIT_X, 0.7);
        let b = Quat::from_axis_angle(Vec3::UNIT_Y, -0.4);
        let v = Vec3::new(1.0, 2.0, 3.0);
        // (a*b) applies b first.
        assert!((a * b).rotate(v).distance(a.rotate(b.rotate(v))) < 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(0.2, -1.0, 0.5), 2.0);
        let v = Vec3::new(-1.0, 0.5, 2.0);
        assert!(q.conjugate().rotate(q.rotate(v)).distance(v) < 1e-12);
    }

    #[test]
    fn rotation_preserves_length() {
        let q = Quat::from_axis_angle(Vec3::new(3.0, 1.0, -2.0), 0.9);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(approx_eq(q.rotate(v).length(), v.length(), 1e-12));
    }

    #[test]
    fn slerp_endpoints() {
        let a = Quat::from_axis_angle(Vec3::UNIT_Z, 0.0);
        let b = Quat::from_axis_angle(Vec3::UNIT_Z, 1.0);
        let v = Vec3::UNIT_X;
        assert!(a.slerp(b, 0.0).rotate(v).distance(a.rotate(v)) < 1e-9);
        assert!(a.slerp(b, 1.0).rotate(v).distance(b.rotate(v)) < 1e-9);
        // Midpoint rotates by half the angle.
        let mid = a.slerp(b, 0.5);
        let expect = Quat::from_axis_angle(Vec3::UNIT_Z, 0.5);
        assert!(mid.rotate(v).distance(expect.rotate(v)) < 1e-9);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let q = Quat::new(2.0, 3.0, -1.0, 0.5).normalized();
        assert!(approx_eq(q.norm(), 1.0, 1e-14));
    }
}
