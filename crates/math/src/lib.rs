//! Linear-algebra and geometry substrate for the `accelviz` workspace.
//!
//! This crate provides the small, dependency-free mathematical core used by
//! every other crate in the reproduction of *"Advanced Visualization
//! Technology for Terascale Particle Accelerator Simulations"* (SC 2002):
//! 3-/4-component vectors, 4×4 matrices, quaternions, axis-aligned bounding
//! boxes, rays, RGBA colors, interpolation kernels, and the statistics
//! helpers used by the benchmark harness (correlation, regression,
//! histograms).
//!
//! All physics-facing types use `f64`; color-facing types use `f32`, which
//! mirrors the double-precision simulation / single-precision framebuffer
//! split of the original system.

pub mod aabb;
pub mod color;
pub mod interp;
pub mod mat4;
pub mod quat;
pub mod ray;
pub mod stats;
pub mod vec3;
pub mod vec4;

pub use aabb::Aabb;
pub use color::Rgba;
pub use interp::{catmull_rom, lerp, smoothstep, trilinear};
pub use mat4::Mat4;
pub use quat::Quat;
pub use ray::Ray;
pub use stats::{Histogram, LinearFit, OnlineStats};
pub use vec3::{Axis, Vec3};
pub use vec4::Vec4;

/// Relative/absolute tolerance comparison used across the workspace tests.
///
/// Returns `true` when `a` and `b` differ by at most `tol` absolutely or by
/// `tol` relative to the larger magnitude.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_magnitudes() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
    }
}
