//! RGBA colors and the compositing algebra used by every renderer in the
//! workspace.

use std::ops::{Add, Mul};

/// A linear-space RGBA color with premultiplication handled explicitly by
/// the compositing operators. Components are `f32`, matching the
/// single-precision framebuffers of the commodity graphics hardware the
/// paper targets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Rgba {
    /// Red, linear \[0,1\].
    pub r: f32,
    /// Green, linear \[0,1\].
    pub g: f32,
    /// Blue, linear \[0,1\].
    pub b: f32,
    /// Opacity (alpha), \[0,1\].
    pub a: f32,
}

impl Rgba {
    /// Fully transparent black.
    pub const TRANSPARENT: Rgba = Rgba {
        r: 0.0,
        g: 0.0,
        b: 0.0,
        a: 0.0,
    };
    /// Opaque black.
    pub const BLACK: Rgba = Rgba {
        r: 0.0,
        g: 0.0,
        b: 0.0,
        a: 1.0,
    };
    /// Opaque white.
    pub const WHITE: Rgba = Rgba {
        r: 1.0,
        g: 1.0,
        b: 1.0,
        a: 1.0,
    };

    /// Color from components (not clamped).
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Rgba {
        Rgba { r, g, b, a }
    }

    /// Opaque color from RGB.
    #[inline]
    pub const fn rgb(r: f32, g: f32, b: f32) -> Rgba {
        Rgba { r, g, b, a: 1.0 }
    }

    /// Grey level `v`, opaque.
    #[inline]
    pub const fn grey(v: f32) -> Rgba {
        Rgba {
            r: v,
            g: v,
            b: v,
            a: 1.0,
        }
    }

    /// Copy with a different alpha.
    #[inline]
    pub fn with_alpha(self, a: f32) -> Rgba {
        Rgba { a, ..self }
    }

    /// Component-wise clamp to \[0,1\].
    #[inline]
    pub fn clamped(self) -> Rgba {
        Rgba::new(
            self.r.clamp(0.0, 1.0),
            self.g.clamp(0.0, 1.0),
            self.b.clamp(0.0, 1.0),
            self.a.clamp(0.0, 1.0),
        )
    }

    /// Source-over compositing of straight-alpha colors:
    /// `self` drawn over `dst`.
    pub fn over(self, dst: Rgba) -> Rgba {
        let sa = self.a;
        let da = dst.a * (1.0 - sa);
        let out_a = sa + da;
        if out_a <= 1e-12 {
            return Rgba::TRANSPARENT;
        }
        Rgba::new(
            (self.r * sa + dst.r * da) / out_a,
            (self.g * sa + dst.g * da) / out_a,
            (self.b * sa + dst.b * da) / out_a,
            out_a,
        )
    }

    /// Front-to-back compositing step used by the volume ray-caster.
    ///
    /// `acc` is the accumulated *premultiplied* color + coverage so far,
    /// `sample` the new straight-alpha sample behind it. Returns the updated
    /// premultiplied accumulator.
    pub fn front_to_back(acc: Rgba, sample: Rgba) -> Rgba {
        let t = 1.0 - acc.a;
        Rgba::new(
            acc.r + sample.r * sample.a * t,
            acc.g + sample.g * sample.a * t,
            acc.b + sample.b * sample.a * t,
            acc.a + sample.a * t,
        )
    }

    /// Converts a premultiplied accumulator back to straight alpha.
    pub fn unpremultiply(self) -> Rgba {
        if self.a <= 1e-12 {
            Rgba::TRANSPARENT
        } else {
            Rgba::new(self.r / self.a, self.g / self.a, self.b / self.a, self.a)
        }
    }

    /// Linear interpolation between colors.
    pub fn lerp(self, o: Rgba, t: f32) -> Rgba {
        Rgba::new(
            self.r + (o.r - self.r) * t,
            self.g + (o.g - self.g) * t,
            self.b + (o.b - self.b) * t,
            self.a + (o.a - self.a) * t,
        )
    }

    /// Perceived luminance (Rec. 709 weights) of the RGB part.
    #[inline]
    pub fn luminance(self) -> f32 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }

    /// Quantizes to 8-bit sRGB-ish (gamma 2.2) bytes for image output.
    pub fn to_srgb8(self) -> [u8; 4] {
        let enc = |v: f32| -> u8 {
            let v = v.clamp(0.0, 1.0).powf(1.0 / 2.2);
            (v * 255.0 + 0.5) as u8
        };
        [
            enc(self.r),
            enc(self.g),
            enc(self.b),
            (self.a.clamp(0.0, 1.0) * 255.0 + 0.5) as u8,
        ]
    }

    /// Maximum absolute per-channel difference to another color, including
    /// alpha. Used by the image-difference metrics in the benchmarks.
    pub fn max_channel_diff(self, o: Rgba) -> f32 {
        (self.r - o.r)
            .abs()
            .max((self.g - o.g).abs())
            .max((self.b - o.b).abs())
            .max((self.a - o.a).abs())
    }
}

impl Add for Rgba {
    type Output = Rgba;
    #[inline]
    fn add(self, o: Rgba) -> Rgba {
        Rgba::new(self.r + o.r, self.g + o.g, self.b + o.b, self.a + o.a)
    }
}

impl Mul<f32> for Rgba {
    type Output = Rgba;
    #[inline]
    fn mul(self, s: f32) -> Rgba {
        Rgba::new(self.r * s, self.g * s, self.b * s, self.a * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Rgba, b: Rgba, tol: f32) -> bool {
        a.max_channel_diff(b) <= tol
    }

    #[test]
    fn over_opaque_source_wins() {
        let red = Rgba::rgb(1.0, 0.0, 0.0);
        let blue = Rgba::rgb(0.0, 0.0, 1.0);
        assert!(close(red.over(blue), red, 1e-6));
    }

    #[test]
    fn over_transparent_source_is_noop() {
        let blue = Rgba::rgb(0.0, 0.0, 1.0);
        assert!(close(Rgba::TRANSPARENT.over(blue), blue, 1e-6));
    }

    #[test]
    fn over_half_alpha_mixes() {
        let half_red = Rgba::new(1.0, 0.0, 0.0, 0.5);
        let white = Rgba::WHITE;
        let out = half_red.over(white);
        assert!((out.a - 1.0).abs() < 1e-6);
        assert!((out.r - 1.0).abs() < 1e-6);
        assert!((out.g - 0.5).abs() < 1e-6);
        assert!((out.b - 0.5).abs() < 1e-6);
    }

    #[test]
    fn front_to_back_matches_back_to_front() {
        // Compositing a stack of translucent samples front-to-back with the
        // accumulator must equal back-to-front `over` chaining.
        let samples = [
            Rgba::new(1.0, 0.0, 0.0, 0.3),
            Rgba::new(0.0, 1.0, 0.0, 0.5),
            Rgba::new(0.0, 0.0, 1.0, 0.7),
        ];
        let mut acc = Rgba::TRANSPARENT;
        for s in samples {
            acc = Rgba::front_to_back(acc, s);
        }
        let ftb = acc.unpremultiply();
        let mut btf = Rgba::TRANSPARENT;
        for s in samples.iter().rev() {
            btf = s.over(btf);
        }
        assert!(close(ftb, btf, 1e-6), "{ftb:?} vs {btf:?}");
    }

    #[test]
    fn front_to_back_saturates_alpha() {
        let mut acc = Rgba::TRANSPARENT;
        for _ in 0..100 {
            acc = Rgba::front_to_back(acc, Rgba::new(1.0, 1.0, 1.0, 0.5));
        }
        assert!(acc.a <= 1.0 + 1e-6);
        assert!(acc.a > 0.999);
    }

    #[test]
    fn srgb_roundtrip_extremes() {
        assert_eq!(Rgba::BLACK.to_srgb8(), [0, 0, 0, 255]);
        assert_eq!(Rgba::WHITE.to_srgb8(), [255, 255, 255, 255]);
        assert_eq!(Rgba::TRANSPARENT.to_srgb8()[3], 0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgba::rgb(1.0, 0.0, 0.0);
        let b = Rgba::rgb(0.0, 1.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn luminance_ordering() {
        // Green contributes most to perceived brightness.
        let r = Rgba::rgb(1.0, 0.0, 0.0).luminance();
        let g = Rgba::rgb(0.0, 1.0, 0.0).luminance();
        let b = Rgba::rgb(0.0, 0.0, 1.0).luminance();
        assert!(g > r && r > b);
        assert!((Rgba::WHITE.luminance() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clamp_bounds() {
        let c = Rgba::new(2.0, -1.0, 0.5, 3.0).clamped();
        assert_eq!(c, Rgba::new(1.0, 0.0, 0.5, 1.0));
    }
}
