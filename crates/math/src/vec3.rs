//! Three-component `f64` vector and the [`Axis`] selector.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// One of the three Cartesian axes. Used to address vector components and to
/// name the coordinates of phase-space plot projections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The x axis (component 0).
    X,
    /// The y axis (component 1).
    Y,
    /// The z axis (component 2).
    Z,
}

impl Axis {
    /// All three axes in component order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Component index of this axis (`X → 0`, `Y → 1`, `Z → 2`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Axis from a component index. Panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

/// A three-component double-precision vector.
///
/// Positions, momenta, field vectors, tangents, and normals throughout the
/// workspace are all `Vec3`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along x.
    pub const UNIT_X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const UNIT_Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z.
    pub const UNIT_Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Unit vector along `axis`.
    #[inline]
    pub fn unit(axis: Axis) -> Vec3 {
        match axis {
            Axis::X => Vec3::UNIT_X,
            Axis::Y => Vec3::UNIT_Y,
            Axis::Z => Vec3::UNIT_Z,
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (no `sqrt`).
    #[inline]
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).length()
    }

    /// Unit-length copy of this vector. Returns `None` for (near-)zero
    /// vectors rather than emitting NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        if len > 1e-300 {
            Some(self / len)
        } else {
            None
        }
    }

    /// Unit-length copy, falling back to `fallback` for zero vectors.
    #[inline]
    pub fn normalized_or(self, fallback: Vec3) -> Vec3 {
        self.normalized().unwrap_or(fallback)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn mul_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Component-wise quotient.
    #[inline]
    pub fn div_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x / o.x, self.y / o.y, self.z / o.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation `self + t * (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Projects this vector onto a unit direction `n` (n need not be unit;
    /// the projection is scaled by `1/|n|²`).
    #[inline]
    pub fn project_onto(self, n: Vec3) -> Vec3 {
        let d = n.length_squared();
        if d <= 1e-300 {
            Vec3::ZERO
        } else {
            n * (self.dot(n) / d)
        }
    }

    /// An arbitrary unit vector perpendicular to `self`.
    ///
    /// Used when constructing streamtube cross-sections and ribbon frames.
    pub fn any_perpendicular(self) -> Vec3 {
        let base = if self.x.abs() < 0.9 {
            Vec3::UNIT_X
        } else {
            Vec3::UNIT_Y
        };
        self.cross(base).normalized_or(Vec3::UNIT_Z)
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Vector from an array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Index<Axis> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, a: Axis) -> &f64 {
        &self[a.index()]
    }
}

impl IndexMut<Axis> for Vec3 {
    #[inline]
    fn index_mut(&mut self, a: Axis) -> &mut f64 {
        &mut self[a.index()]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        assert_eq!(a + b, Vec3::new(5.0, 1.0, 3.5));
        assert_eq!(a - b, Vec3::new(-3.0, 3.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::UNIT_X.dot(Vec3::UNIT_Y), 0.0);
        assert_eq!(Vec3::UNIT_X.cross(Vec3::UNIT_Y), Vec3::UNIT_Z);
        assert_eq!(Vec3::UNIT_Y.cross(Vec3::UNIT_Z), Vec3::UNIT_X);
        assert_eq!(Vec3::UNIT_Z.cross(Vec3::UNIT_X), Vec3::UNIT_Y);
        // Anti-commutativity.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
        // Cross product is orthogonal to both operands.
        assert!(a.cross(b).dot(a).abs() < 1e-12);
        assert!(a.cross(b).dot(b).abs() < 1e-12);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
        assert_eq!(Vec3::ZERO.normalized_or(Vec3::UNIT_X), Vec3::UNIT_X);
    }

    #[test]
    fn axis_indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[Axis::X], 1.0);
        assert_eq!(v[Axis::Y], 2.0);
        assert_eq!(v[Axis::Z], 3.0);
        v[Axis::Z] = 9.0;
        assert_eq!(v[2], 9.0);
        for (i, a) in Axis::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Axis::from_index(i), *a);
        }
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(0.0, 2.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 2.0, 4.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn any_perpendicular_is_perpendicular_and_unit() {
        for v in [
            Vec3::UNIT_X,
            Vec3::UNIT_Y,
            Vec3::UNIT_Z,
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 12.0, 0.001),
        ] {
            let p = v.any_perpendicular();
            assert!(p.dot(v).abs() < 1e-9 * v.length().max(1.0));
            assert!((p.length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn projection() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let p = v.project_onto(Vec3::UNIT_X * 10.0);
        assert_eq!(p, Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(v.project_onto(Vec3::ZERO), Vec3::ZERO);
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.25);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
