//! Scalar interpolation kernels shared by the transfer functions, the
//! volume sampler, and the field interpolators.

/// Linear interpolation `a + t (b - a)`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Hermite smoothstep: 0 below `e0`, 1 above `e1`, smooth in between.
/// Used for the "ramp" transition of the paper's volume transfer function
/// (§2.4), which softens the artificial boundary of the volume region.
pub fn smoothstep(e0: f64, e1: f64, x: f64) -> f64 {
    if e0 >= e1 {
        // Degenerate ramp: behave as a step at e0.
        return if x < e0 { 0.0 } else { 1.0 };
    }
    let t = ((x - e0) / (e1 - e0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Trilinear interpolation of the 8 corner values of a cell.
///
/// `c[i]` uses the same bit convention as `Aabb::octant_index`: bit 0 = x
/// high, bit 1 = y high, bit 2 = z high. `(u, v, w)` are the fractional
/// coordinates in \[0,1\].
pub fn trilinear(c: &[f64; 8], u: f64, v: f64, w: f64) -> f64 {
    let x00 = lerp(c[0], c[1], u);
    let x10 = lerp(c[2], c[3], u);
    let x01 = lerp(c[4], c[5], u);
    let x11 = lerp(c[6], c[7], u);
    let y0 = lerp(x00, x10, v);
    let y1 = lerp(x01, x11, v);
    lerp(y0, y1, w)
}

/// Centripetal-flavoured Catmull-Rom interpolation through `p1`..`p2` with
/// neighbours `p0`, `p3`, at parameter `t` in \[0,1\]. Used to smooth sparse
/// field-line polylines before strip generation.
pub fn catmull_rom(p0: f64, p1: f64, p2: f64, p3: f64, t: f64) -> f64 {
    let t2 = t * t;
    let t3 = t2 * t;
    0.5 * ((2.0 * p1)
        + (-p0 + p2) * t
        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(0.0, 10.0, 0.0), 0.0);
        assert_eq!(lerp(0.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(0.0, 10.0, 0.25), 2.5);
        // Extrapolation is allowed.
        assert_eq!(lerp(0.0, 10.0, 1.5), 15.0);
    }

    #[test]
    fn smoothstep_clamps_and_is_monotone() {
        assert_eq!(smoothstep(0.2, 0.8, 0.0), 0.0);
        assert_eq!(smoothstep(0.2, 0.8, 1.0), 1.0);
        assert!((smoothstep(0.2, 0.8, 0.5) - 0.5).abs() < 1e-12);
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = smoothstep(0.2, 0.8, i as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn smoothstep_degenerate_is_step() {
        assert_eq!(smoothstep(0.5, 0.5, 0.4), 0.0);
        assert_eq!(smoothstep(0.5, 0.5, 0.6), 1.0);
        assert_eq!(smoothstep(0.5, 0.5, 0.5), 1.0);
    }

    #[test]
    fn trilinear_corners_and_center() {
        let c = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(trilinear(&c, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(trilinear(&c, 1.0, 0.0, 0.0), 1.0);
        assert_eq!(trilinear(&c, 0.0, 1.0, 0.0), 2.0);
        assert_eq!(trilinear(&c, 0.0, 0.0, 1.0), 4.0);
        assert_eq!(trilinear(&c, 1.0, 1.0, 1.0), 7.0);
        // Center is the mean of the corners.
        let mean: f64 = c.iter().sum::<f64>() / 8.0;
        assert!((trilinear(&c, 0.5, 0.5, 0.5) - mean).abs() < 1e-12);
    }

    #[test]
    fn trilinear_constant_field() {
        let c = [3.5; 8];
        for &(u, v, w) in &[(0.1, 0.9, 0.3), (0.5, 0.5, 0.5), (0.0, 1.0, 0.7)] {
            assert!((trilinear(&c, u, v, w) - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn catmull_rom_interpolates_endpoints() {
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 0.0), 1.0);
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 1.0), 2.0);
        // On collinear data it reproduces the line.
        assert!((catmull_rom(0.0, 1.0, 2.0, 3.0, 0.5) - 1.5).abs() < 1e-12);
    }
}
