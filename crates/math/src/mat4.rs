//! Column-major 4×4 matrix for the rendering pipeline.

use crate::vec3::Vec3;
use crate::vec4::Vec4;
use std::ops::Mul;

/// A column-major 4×4 double-precision matrix.
///
/// `m[c][r]` is the element in column `c`, row `r` — the same layout OpenGL
/// used on the graphics cards the paper targets, so transform code reads
/// identically to the original fixed-function pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [[f64; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Matrix from columns.
    #[inline]
    pub const fn from_cols(cols: [[f64; 4]; 4]) -> Mat4 {
        Mat4 { cols }
    }

    /// Element accessor: column `c`, row `r`.
    #[inline]
    pub fn at(&self, c: usize, r: usize) -> f64 {
        self.cols[c][r]
    }

    /// Translation matrix.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = [t.x, t.y, t.z, 1.0];
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[0][0] = s.x;
        m.cols[1][1] = s.y;
        m.cols[2][2] = s.z;
        m
    }

    /// Rotation about the x axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, c, s, 0.0],
            [0.0, -s, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Rotation about the y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols([
            [c, 0.0, -s, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [s, 0.0, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Rotation about the z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols([
            [c, s, 0.0, 0.0],
            [-s, c, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Right-handed look-at view matrix (camera at `eye`, looking at
    /// `target`, with `up` roughly up).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized_or(-Vec3::UNIT_Z);
        let s = f.cross(up).normalized_or(Vec3::UNIT_X);
        let u = s.cross(f);
        Mat4::from_cols([
            [s.x, u.x, -f.x, 0.0],
            [s.y, u.y, -f.y, 0.0],
            [s.z, u.z, -f.z, 0.0],
            [-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0],
        ])
    }

    /// Right-handed perspective projection (OpenGL clip conventions:
    /// z ∈ [-1, 1] after divide).
    ///
    /// `fovy` is the vertical field of view in radians; `aspect` is
    /// width/height; `near`/`far` are positive distances.
    pub fn perspective(fovy: f64, aspect: f64, near: f64, far: f64) -> Mat4 {
        assert!(near > 0.0 && far > near, "invalid near/far planes");
        let f = 1.0 / (fovy / 2.0).tan();
        Mat4::from_cols([
            [f / aspect, 0.0, 0.0, 0.0],
            [0.0, f, 0.0, 0.0],
            [0.0, 0.0, (far + near) / (near - far), -1.0],
            [0.0, 0.0, 2.0 * far * near / (near - far), 0.0],
        ])
    }

    /// Orthographic projection onto `[-1,1]³`.
    pub fn orthographic(l: f64, r: f64, b: f64, t: f64, near: f64, far: f64) -> Mat4 {
        Mat4::from_cols([
            [2.0 / (r - l), 0.0, 0.0, 0.0],
            [0.0, 2.0 / (t - b), 0.0, 0.0],
            [0.0, 0.0, -2.0 / (far - near), 0.0],
            [
                -(r + l) / (r - l),
                -(t + b) / (t - b),
                -(far + near) / (far - near),
                1.0,
            ],
        ])
    }

    /// Matrix transpose.
    #[allow(clippy::needless_range_loop)]
    pub fn transpose(&self) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        for c in 0..4 {
            for r in 0..4 {
                m.cols[c][r] = self.cols[r][c];
            }
        }
        m
    }

    /// Full 4×4 inverse via cofactor expansion. Returns `None` when the
    /// matrix is singular.
    #[allow(clippy::needless_range_loop)]
    pub fn inverse(&self) -> Option<Mat4> {
        // Flatten to row-major a[r][c] for readability of the cofactor code.
        let mut a = [[0.0f64; 4]; 4];
        for c in 0..4 {
            for r in 0..4 {
                a[r][c] = self.cols[c][r];
            }
        }
        let mut inv = [[0.0f64; 4]; 4];

        // 2x2 sub-determinants of the lower half.
        let s0 = a[0][0] * a[1][1] - a[1][0] * a[0][1];
        let s1 = a[0][0] * a[1][2] - a[1][0] * a[0][2];
        let s2 = a[0][0] * a[1][3] - a[1][0] * a[0][3];
        let s3 = a[0][1] * a[1][2] - a[1][1] * a[0][2];
        let s4 = a[0][1] * a[1][3] - a[1][1] * a[0][3];
        let s5 = a[0][2] * a[1][3] - a[1][2] * a[0][3];

        let c5 = a[2][2] * a[3][3] - a[3][2] * a[2][3];
        let c4 = a[2][1] * a[3][3] - a[3][1] * a[2][3];
        let c3 = a[2][1] * a[3][2] - a[3][1] * a[2][2];
        let c2 = a[2][0] * a[3][3] - a[3][0] * a[2][3];
        let c1 = a[2][0] * a[3][2] - a[3][0] * a[2][2];
        let c0 = a[2][0] * a[3][1] - a[3][0] * a[2][1];

        let det = s0 * c5 - s1 * c4 + s2 * c3 + s3 * c2 - s4 * c1 + s5 * c0;
        if det.abs() < 1e-300 {
            return None;
        }
        let invdet = 1.0 / det;

        inv[0][0] = (a[1][1] * c5 - a[1][2] * c4 + a[1][3] * c3) * invdet;
        inv[0][1] = (-a[0][1] * c5 + a[0][2] * c4 - a[0][3] * c3) * invdet;
        inv[0][2] = (a[3][1] * s5 - a[3][2] * s4 + a[3][3] * s3) * invdet;
        inv[0][3] = (-a[2][1] * s5 + a[2][2] * s4 - a[2][3] * s3) * invdet;

        inv[1][0] = (-a[1][0] * c5 + a[1][2] * c2 - a[1][3] * c1) * invdet;
        inv[1][1] = (a[0][0] * c5 - a[0][2] * c2 + a[0][3] * c1) * invdet;
        inv[1][2] = (-a[3][0] * s5 + a[3][2] * s2 - a[3][3] * s1) * invdet;
        inv[1][3] = (a[2][0] * s5 - a[2][2] * s2 + a[2][3] * s1) * invdet;

        inv[2][0] = (a[1][0] * c4 - a[1][1] * c2 + a[1][3] * c0) * invdet;
        inv[2][1] = (-a[0][0] * c4 + a[0][1] * c2 - a[0][3] * c0) * invdet;
        inv[2][2] = (a[3][0] * s4 - a[3][1] * s2 + a[3][3] * s0) * invdet;
        inv[2][3] = (-a[2][0] * s4 + a[2][1] * s2 - a[2][3] * s0) * invdet;

        inv[3][0] = (-a[1][0] * c3 + a[1][1] * c1 - a[1][2] * c0) * invdet;
        inv[3][1] = (a[0][0] * c3 - a[0][1] * c1 + a[0][2] * c0) * invdet;
        inv[3][2] = (-a[3][0] * s3 + a[3][1] * s1 - a[3][2] * s0) * invdet;
        inv[3][3] = (a[2][0] * s3 - a[2][1] * s1 + a[2][2] * s0) * invdet;

        // Back to column-major.
        let mut m = Mat4::IDENTITY;
        for c in 0..4 {
            for r in 0..4 {
                m.cols[c][r] = inv[r][c];
            }
        }
        Some(m)
    }

    /// Transforms a homogeneous vector.
    #[inline]
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        let c = &self.cols;
        Vec4::new(
            c[0][0] * v.x + c[1][0] * v.y + c[2][0] * v.z + c[3][0] * v.w,
            c[0][1] * v.x + c[1][1] * v.y + c[2][1] * v.z + c[3][1] * v.w,
            c[0][2] * v.x + c[1][2] * v.y + c[2][2] * v.z + c[3][2] * v.w,
            c[0][3] * v.x + c[1][3] * v.y + c[2][3] * v.z + c[3][3] * v.w,
        )
    }

    /// Transforms a point (w = 1) without the perspective divide.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(Vec4::from_point(p)).xyz()
    }

    /// Transforms a point (w = 1) *with* the perspective divide; `None` for
    /// points mapped to infinity.
    #[inline]
    pub fn project_point(&self, p: Vec3) -> Option<Vec3> {
        self.mul_vec4(Vec4::from_point(p)).project()
    }

    /// Transforms a direction (w = 0).
    #[inline]
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(Vec4::from_direction(d)).xyz()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, o: Mat4) -> Mat4 {
        let mut m = Mat4::from_cols([[0.0; 4]; 4]);
        for c in 0..4 {
            for r in 0..4 {
                let mut sum = 0.0;
                for k in 0..4 {
                    sum += self.cols[k][r] * o.cols[c][k];
                }
                m.cols[c][r] = sum;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mats_close(a: &Mat4, b: &Mat4, tol: f64) -> bool {
        (0..4).all(|c| (0..4).all(|r| approx_eq(a.cols[c][r], b.cols[c][r], tol)))
    }

    #[test]
    fn identity_is_neutral() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat4::IDENTITY.transform_point(p), p);
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert!(mats_close(&(m * Mat4::IDENTITY), &m, 1e-15));
        assert!(mats_close(&(Mat4::IDENTITY * m), &m, 1e-15));
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_direction(Vec3::UNIT_X), Vec3::UNIT_X);
    }

    #[test]
    fn scale_scales() {
        let m = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(
            m.transform_point(Vec3::new(1.0, 1.0, 1.0)),
            Vec3::new(2.0, 3.0, 4.0)
        );
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let m = Mat4::rotation_z(std::f64::consts::FRAC_PI_2);
        let r = m.transform_point(Vec3::UNIT_X);
        assert!(r.distance(Vec3::UNIT_Y) < 1e-12);
    }

    #[test]
    fn rotations_preserve_length() {
        let m = Mat4::rotation_x(0.3) * Mat4::rotation_y(1.1) * Mat4::rotation_z(-0.7);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(approx_eq(m.transform_point(v).length(), v.length(), 1e-12));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat4::translation(Vec3::new(1.0, -2.0, 0.5))
            * Mat4::rotation_y(0.8)
            * Mat4::scale(Vec3::new(2.0, 1.0, 0.25));
        let inv = m.inverse().unwrap();
        assert!(mats_close(&(m * inv), &Mat4::IDENTITY, 1e-12));
        assert!(mats_close(&(inv * m), &Mat4::IDENTITY, 1e-12));
    }

    #[test]
    fn singular_has_no_inverse() {
        let m = Mat4::scale(Vec3::new(1.0, 0.0, 1.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn look_at_maps_eye_to_origin_and_target_to_neg_z() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let target = Vec3::ZERO;
        let m = Mat4::look_at(eye, target, Vec3::UNIT_Y);
        assert!(m.transform_point(eye).length() < 1e-12);
        let t = m.transform_point(target);
        // Target is straight down -z at distance 5.
        assert!(t.distance(Vec3::new(0.0, 0.0, -5.0)) < 1e-12);
    }

    #[test]
    fn perspective_maps_frustum_to_clip_cube() {
        let proj = Mat4::perspective(std::f64::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        // A point on the near plane straight ahead maps to z = -1.
        let p = proj.project_point(Vec3::new(0.0, 0.0, -1.0)).unwrap();
        assert!(approx_eq(p.z, -1.0, 1e-12));
        // A point on the far plane maps to z = +1.
        let p = proj.project_point(Vec3::new(0.0, 0.0, -100.0)).unwrap();
        assert!(approx_eq(p.z, 1.0, 1e-12));
        // fovy = 90° → at distance d the frustum half-height is d.
        let p = proj.project_point(Vec3::new(0.0, 2.0, -2.0)).unwrap();
        assert!(approx_eq(p.y, 1.0, 1e-12));
    }

    #[test]
    fn orthographic_unit_box() {
        let proj = Mat4::orthographic(-1.0, 1.0, -1.0, 1.0, 0.0, 2.0);
        let p = proj.project_point(Vec3::new(0.5, -0.5, -1.0)).unwrap();
        assert!(approx_eq(p.x, 0.5, 1e-12));
        assert!(approx_eq(p.y, -0.5, 1e-12));
        assert!(approx_eq(p.z, 0.0, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::UNIT_Y);
        assert!(mats_close(&m.transpose().transpose(), &m, 0.0));
    }

    #[test]
    fn matrix_multiply_composes_transforms() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::splat(2.0));
        let p = Vec3::new(1.0, 1.0, 1.0);
        // (t * s) applies s first, then t — OpenGL composition order.
        let composed = (t * s).transform_point(p);
        let sequential = t.transform_point(s.transform_point(p));
        assert_eq!(composed, sequential);
        assert_eq!(composed, Vec3::new(3.0, 2.0, 2.0));
    }
}
