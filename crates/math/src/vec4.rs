//! Four-component `f64` vector (homogeneous coordinates).

use crate::vec3::Vec3;
use std::ops::{Add, Div, Index, Mul, Neg, Sub};

/// A four-component double-precision vector, used for homogeneous
/// coordinates in the projection pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec4 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
    /// w (homogeneous) component.
    pub w: f64,
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Vec4 = Vec4 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64, w: f64) -> Vec4 {
        Vec4 { x, y, z, w }
    }

    /// Homogeneous *point*: `(v, 1)`.
    #[inline]
    pub fn from_point(v: Vec3) -> Vec4 {
        Vec4::new(v.x, v.y, v.z, 1.0)
    }

    /// Homogeneous *direction*: `(v, 0)`.
    #[inline]
    pub fn from_direction(v: Vec3) -> Vec4 {
        Vec4::new(v.x, v.y, v.z, 0.0)
    }

    /// The xyz part, ignoring w.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `(x/w, y/w, z/w)`. Returns `None` when |w| is
    /// (near-)zero, i.e. the point is at infinity.
    #[inline]
    pub fn project(self) -> Option<Vec3> {
        if self.w.abs() <= 1e-300 {
            None
        } else {
            Some(self.xyz() / self.w)
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec4) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl Add for Vec4 {
    type Output = Vec4;
    #[inline]
    fn add(self, o: Vec4) -> Vec4 {
        Vec4::new(self.x + o.x, self.y + o.y, self.z + o.z, self.w + o.w)
    }
}

impl Sub for Vec4 {
    type Output = Vec4;
    #[inline]
    fn sub(self, o: Vec4) -> Vec4 {
        Vec4::new(self.x - o.x, self.y - o.y, self.z - o.z, self.w - o.w)
    }
}

impl Mul<f64> for Vec4 {
    type Output = Vec4;
    #[inline]
    fn mul(self, s: f64) -> Vec4 {
        Vec4::new(self.x * s, self.y * s, self.z * s, self.w * s)
    }
}

impl Div<f64> for Vec4 {
    type Output = Vec4;
    #[inline]
    fn div(self, s: f64) -> Vec4 {
        Vec4::new(self.x / s, self.y / s, self.z / s, self.w / s)
    }
}

impl Neg for Vec4 {
    type Output = Vec4;
    #[inline]
    fn neg(self) -> Vec4 {
        Vec4::new(-self.x, -self.y, -self.z, -self.w)
    }
}

impl Index<usize> for Vec4 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            _ => panic!("Vec4 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_direction_construction() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec4::from_point(v).w, 1.0);
        assert_eq!(Vec4::from_direction(v).w, 0.0);
        assert_eq!(Vec4::from_point(v).xyz(), v);
    }

    #[test]
    fn perspective_divide() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project().unwrap(), Vec3::new(1.0, 2.0, 3.0));
        assert!(Vec4::new(1.0, 1.0, 1.0, 0.0).project().is_none());
    }

    #[test]
    fn arithmetic() {
        let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let b = Vec4::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec4::new(1.5, 2.5, 3.5, 4.5));
        assert_eq!(a - b, Vec4::new(0.5, 1.5, 2.5, 3.5));
        assert_eq!(a * 2.0, Vec4::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a / 2.0, Vec4::new(0.5, 1.0, 1.5, 2.0));
        assert_eq!(-a, Vec4::new(-1.0, -2.0, -3.0, -4.0));
        assert_eq!(a.dot(b), 0.5 + 1.0 + 1.5 + 2.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[3], 4.0);
    }

    #[test]
    fn length() {
        assert_eq!(Vec4::new(2.0, 0.0, 0.0, 0.0).length(), 2.0);
    }
}
