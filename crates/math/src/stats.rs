//! Statistics helpers for diagnostics and the benchmark harness:
//! single-pass moments, Pearson correlation, log-log regression (scaling
//! exponents), and histograms.

/// Numerically stable single-pass accumulator for mean/variance
/// (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, o: &OnlineStats) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        let n = (self.n + o.n) as f64;
        let delta = o.mean - self.mean;
        let mean = self.mean + delta * o.n as f64 / n;
        let m2 = self.m2 + o.m2 + delta * delta * self.n as f64 * o.n as f64 / n;
        self.n += o.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample is constant or the samples are empty /
/// mismatched in length, which is the conservative choice for the density ∝
/// magnitude checks.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// A least-squares line `y = slope * x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl LinearFit {
    /// Ordinary least squares fit. Returns `None` for fewer than two points
    /// or constant x.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        if xs.len() != ys.len() || xs.len() < 2 {
            return None;
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxy += (x - mx) * (y - my);
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
        }
        if sxx <= 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r_squared = if syy <= 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Fits `y = c * x^p` by regressing in log-log space and returns the
    /// exponent `p`. Used by the PREP experiment to verify the paper's claim
    /// that partitioning scales linearly in the particle count.
    pub fn scaling_exponent(sizes: &[f64], times: &[f64]) -> Option<LinearFit> {
        if sizes.iter().chain(times).any(|&v| v <= 0.0) {
            return None;
        }
        let lx: Vec<f64> = sizes.iter().map(|v| v.ln()).collect();
        let ly: Vec<f64> = times.iter().map(|v| v.ln()).collect();
        LinearFit::fit(&lx, &ly)
    }

    /// Evaluates the fitted line.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A fixed-range histogram with uniformly sized bins. Out-of-range samples
/// are clamped to the edge bins, so every pushed sample is counted.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi]` with `bins` bins. Panics on `bins == 0` or
    /// a non-positive range.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Bin index for a value (clamped to the edge bins).
    pub fn bin_of(&self, x: f64) -> usize {
        let b = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64).floor();
        (b.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of samples at or below the upper edge of bin `i`.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts[..=i].iter().sum();
        c as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 4.0).collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept + 4.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.eval(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_exponent_detects_linear_and_quadratic() {
        let ns: Vec<f64> = (1..=10).map(|i| (i * 1000) as f64).collect();
        let lin: Vec<f64> = ns.iter().map(|n| 3e-6 * n).collect();
        let quad: Vec<f64> = ns.iter().map(|n| 1e-9 * n * n).collect();
        let fl = LinearFit::scaling_exponent(&ns, &lin).unwrap();
        let fq = LinearFit::scaling_exponent(&ns, &quad).unwrap();
        assert!((fl.slope - 1.0).abs() < 1e-9);
        assert!((fq.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_exponent_rejects_nonpositive() {
        assert!(LinearFit::scaling_exponent(&[1.0, 0.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        // Out-of-range values are clamped to the edge bins.
        h.push(-5.0);
        h.push(25.0);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 12);
    }

    #[test]
    fn histogram_centers_and_cdf() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.push(x);
        }
        assert!((h.cumulative_fraction(1) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
