//! Axis-aligned bounding boxes, including the octant subdivision used by the
//! particle octree.

use crate::ray::Ray;
use crate::vec3::Vec3;

/// An axis-aligned bounding box given by inclusive min/max corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Box from corners. Panics if any `min` component exceeds `max`.
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max: {min} vs {max}"
        );
        Aabb { min, max }
    }

    /// The empty box (inverted bounds); `union`-ing points into it grows it.
    pub fn empty() -> Aabb {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Cube centered at `center` with half-extent `half`.
    pub fn cube(center: Vec3, half: f64) -> Aabb {
        assert!(half >= 0.0);
        Aabb::new(center - Vec3::splat(half), center + Vec3::splat(half))
    }

    /// Smallest box containing every point in `points`. Returns
    /// [`Aabb::empty`] for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        let mut b = Aabb::empty();
        for p in points {
            b.grow(p);
        }
        b
    }

    /// `true` when this is the empty box.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Expands the box to include `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box (0 for empty/degenerate boxes).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Longest edge length.
    pub fn longest_edge(&self) -> f64 {
        self.size().max_component()
    }

    /// Half-open containment test used by the octree: a point exactly on the
    /// max face belongs to the *neighboring* box, except that callers are
    /// expected to clamp the root. This keeps octant assignment unambiguous.
    pub fn contains_half_open(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
            && p.z >= self.min.z
            && p.z < self.max.z
    }

    /// Closed containment test (both faces inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` when two boxes overlap (closed).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Index of the octant (0–7) that `p` falls into, with bit 0 = x-high,
    /// bit 1 = y-high, bit 2 = z-high relative to the box center.
    pub fn octant_index(&self, p: Vec3) -> usize {
        let c = self.center();
        (usize::from(p.x >= c.x)) | (usize::from(p.y >= c.y) << 1) | (usize::from(p.z >= c.z) << 2)
    }

    /// The `i`-th octant sub-box (same bit convention as
    /// [`Aabb::octant_index`]).
    pub fn octant(&self, i: usize) -> Aabb {
        assert!(i < 8, "octant index out of range: {i}");
        let c = self.center();
        let pick = |bit: bool, lo: f64, mid: f64, hi: f64| -> (f64, f64) {
            if bit {
                (mid, hi)
            } else {
                (lo, mid)
            }
        };
        let (x0, x1) = pick(i & 1 != 0, self.min.x, c.x, self.max.x);
        let (y0, y1) = pick(i & 2 != 0, self.min.y, c.y, self.max.y);
        let (z0, z1) = pick(i & 4 != 0, self.min.z, c.z, self.max.z);
        Aabb::new(Vec3::new(x0, y0, z0), Vec3::new(x1, y1, z1))
    }

    /// Slab-method ray intersection. Returns the `(t_near, t_far)` interval
    /// clipped to `t >= 0`, or `None` when the ray misses.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f64, f64)> {
        let mut t0 = 0.0f64;
        let mut t1 = f64::INFINITY;
        for i in 0..3 {
            let origin = ray.origin[i];
            let dir = ray.dir[i];
            if dir.abs() < 1e-300 {
                if origin < self.min[i] || origin > self.max[i] {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / dir;
            let mut ta = (self.min[i] - origin) * inv;
            let mut tb = (self.max[i] - origin) * inv;
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (mn, mx) = (self.min, self.max);
        [
            Vec3::new(mn.x, mn.y, mn.z),
            Vec3::new(mx.x, mn.y, mn.z),
            Vec3::new(mn.x, mx.y, mn.z),
            Vec3::new(mx.x, mx.y, mn.z),
            Vec3::new(mn.x, mn.y, mx.z),
            Vec3::new(mx.x, mn.y, mx.z),
            Vec3::new(mn.x, mx.y, mx.z),
            Vec3::new(mx.x, mx.y, mx.z),
        ]
    }

    /// Normalized coordinates of `p` inside the box, each in \[0,1\] when the
    /// point is inside. Degenerate axes map to 0.
    pub fn normalized_coords(&self, p: Vec3) -> Vec3 {
        let s = self.size();
        let safe = |num: f64, den: f64| if den.abs() < 1e-300 { 0.0 } else { num / den };
        Vec3::new(
            safe(p.x - self.min.x, s.x),
            safe(p.y - self.min.y, s.y),
            safe(p.z - self.min.z, s.z),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn grow_and_from_points() {
        let b = Aabb::from_points([
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, 10.0),
        ]);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 10.0));
        assert!(Aabb::from_points([]).is_empty());
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::splat(3.0)));
        // Union with empty is identity.
        assert_eq!(a.union(&Aabb::empty()), a);
    }

    #[test]
    fn volume_and_edges() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.longest_edge(), 4.0);
        assert_eq!(Aabb::empty().volume(), 0.0);
        assert_eq!(b.center(), Vec3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn octants_partition_the_box() {
        let b = unit_box();
        // The eight octants tile the box: volumes sum, and each point maps
        // to the octant that contains it.
        let total: f64 = (0..8).map(|i| b.octant(i).volume()).sum();
        assert!((total - b.volume()).abs() < 1e-12);
        for p in [
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(0.9, 0.1, 0.1),
            Vec3::new(0.1, 0.9, 0.1),
            Vec3::new(0.9, 0.9, 0.9),
            Vec3::new(0.5, 0.5, 0.5),
        ] {
            let i = b.octant_index(p);
            assert!(b.octant(i).contains(p), "octant {i} must contain {p}");
        }
    }

    #[test]
    fn octant_index_bit_convention() {
        let b = unit_box();
        assert_eq!(b.octant_index(Vec3::new(0.25, 0.25, 0.25)), 0);
        assert_eq!(b.octant_index(Vec3::new(0.75, 0.25, 0.25)), 1);
        assert_eq!(b.octant_index(Vec3::new(0.25, 0.75, 0.25)), 2);
        assert_eq!(b.octant_index(Vec3::new(0.25, 0.25, 0.75)), 4);
        assert_eq!(b.octant_index(Vec3::new(0.75, 0.75, 0.75)), 7);
    }

    #[test]
    fn half_open_containment() {
        let b = unit_box();
        assert!(b.contains_half_open(Vec3::ZERO));
        assert!(!b.contains_half_open(Vec3::ONE));
        assert!(b.contains(Vec3::ONE));
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = unit_box();
        let hit = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::UNIT_X);
        let (t0, t1) = b.intersect_ray(&hit).unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
        let miss = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::UNIT_X);
        assert!(b.intersect_ray(&miss).is_none());
        // Ray starting inside: interval starts at 0.
        let inside = Ray::new(Vec3::splat(0.5), Vec3::UNIT_Z);
        let (t0, t1) = b.intersect_ray(&inside).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-12);
        // Axis-parallel ray outside the slab.
        let parallel = Ray::new(Vec3::new(2.0, 0.5, 0.0), Vec3::UNIT_Z);
        assert!(b.intersect_ray(&parallel).is_none());
    }

    #[test]
    fn normalized_coords_span_unit_cube() {
        let b = Aabb::new(Vec3::new(-2.0, 0.0, 4.0), Vec3::new(2.0, 2.0, 8.0));
        assert_eq!(b.normalized_coords(b.min), Vec3::ZERO);
        assert_eq!(b.normalized_coords(b.max), Vec3::ONE);
        assert_eq!(b.normalized_coords(b.center()), Vec3::splat(0.5));
    }

    #[test]
    fn corners_are_all_contained() {
        let b = Aabb::new(Vec3::new(-1.0, -2.0, -3.0), Vec3::new(4.0, 5.0, 6.0));
        for c in b.corners() {
            assert!(b.contains(c));
        }
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }
}
