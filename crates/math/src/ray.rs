//! Rays for the volume ray-caster.

use crate::vec3::Vec3;

/// A ray `origin + t * dir`, `t >= 0`. `dir` is not required to be unit
/// length; parametric distances are in units of `|dir|`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction.
    pub dir: Vec3,
}

impl Ray {
    /// Ray from origin and direction.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Ray {
        Ray { origin, dir }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Copy with unit-length direction (`None` if the direction is zero).
    pub fn normalized(&self) -> Option<Ray> {
        self.dir.normalized().map(|d| Ray::new(self.origin, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(r.at(0.0), Vec3::ZERO);
        assert_eq!(r.at(2.0), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn normalized_direction_is_unit() {
        let r = Ray::new(Vec3::ONE, Vec3::new(0.0, 3.0, 4.0))
            .normalized()
            .unwrap();
        assert!((r.dir.length() - 1.0).abs() < 1e-15);
        assert_eq!(r.origin, Vec3::ONE);
        assert!(Ray::new(Vec3::ZERO, Vec3::ZERO).normalized().is_none());
    }
}
