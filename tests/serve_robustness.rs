//! Robustness of the frame service against misbehaving clients: stalled
//! and byte-dribbling connections must not pin worker threads, and
//! non-finite thresholds must be rejected in-band without killing the
//! connection.

use accelviz::beam::distribution::Distribution;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::protocol::{ERR_BAD_THRESHOLD, ERR_INTERNAL};
use accelviz::serve::stats::CTR_HANDLER_PANICS;
use accelviz::serve::{Client, ClientConfig, FrameServer, ServeError, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn stores(n: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(800, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn short_timeout_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Some(Duration::from_millis(100)),
        write_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    }
}

/// Reads until EOF or `deadline`; returns whether the peer closed.
fn peer_closed_within(stream: &mut TcpStream, deadline: Duration) -> bool {
    let start = Instant::now();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut buf = [0u8; 64];
    while start.elapsed() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            // Reset also proves the worker gave up on us.
            Err(_) => return true,
        }
    }
    false
}

#[test]
fn silent_client_is_disconnected_by_the_read_timeout() {
    let server = FrameServer::spawn_loopback(stores(1), short_timeout_config()).unwrap();

    // Connect and send nothing at all.
    let mut mute = TcpStream::connect(server.addr()).unwrap();
    assert!(
        peer_closed_within(&mut mute, Duration::from_secs(5)),
        "server must drop a client that never sends a request"
    );

    // The freed server still serves well-behaved clients.
    let mut client = Client::connect(server.addr()).unwrap();
    let (frame, _) = client.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 0);
    server.shutdown();
}

#[test]
fn byte_dribbling_client_cannot_pin_a_worker() {
    let server = FrameServer::spawn_loopback(stores(1), short_timeout_config()).unwrap();

    // Send a lone byte — the worker now blocks mid-envelope — then stall.
    let mut dribble = TcpStream::connect(server.addr()).unwrap();
    dribble.write_all(&[0x41]).unwrap();
    assert!(
        peer_closed_within(&mut dribble, Duration::from_secs(5)),
        "server must drop a client stalled mid-request"
    );

    let client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.frame_count(), 1);
    server.shutdown();
}

#[test]
fn nan_thresholds_are_rejected_in_band() {
    let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Both the canonical NaN and an arbitrary payload NaN: each bit
    // pattern would otherwise occupy its own cache slot.
    let payload_nan = f64::from_bits(f64::NAN.to_bits() ^ 0x5_5555);
    assert!(payload_nan.is_nan());
    for bad in [f64::NAN, payload_nan] {
        match client.fetch(0, bad) {
            Err(ServeError::Remote { code, message }) => {
                assert_eq!(code, ERR_BAD_THRESHOLD);
                assert!(message.contains("NaN"), "{message}");
            }
            other => panic!("NaN threshold: expected a remote error, got {other:?}"),
        }
        // The connection survives each rejection and keeps serving.
        let (frame, _) = client.fetch(0, 1.0).unwrap();
        assert_eq!(frame.step, 0);
    }

    // Rejected requests never reach the extraction cache.
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "only the threshold-1.0 extraction");
    server.shutdown();
}

#[test]
fn infinite_thresholds_remain_valid_dials() {
    // +Inf is the catalog's own unlimited-budget sentinel ("serve
    // everything"); -Inf dials an empty extraction. Neither is an error.
    let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (all, _) = client.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(all.points.len(), 800, "+Inf serves every particle");
    let (none, _) = client.fetch(0, f64::NEG_INFINITY).unwrap();
    assert!(none.points.is_empty(), "-Inf serves none");
    server.shutdown();
}

#[test]
fn panicking_handler_is_isolated_to_err_internal() {
    // A zero volume dimension makes the extraction itself panic
    // ("grid dims must be positive") — a stand-in for any poisoned
    // request. The panic must not take down the connection, let alone
    // the listener: the client gets ERR_INTERNAL in-band and keeps the
    // session.
    let config = ServerConfig {
        volume_dims: [0, 16, 16],
        ..ServerConfig::default()
    };
    let server = FrameServer::spawn_loopback(stores(1), config).unwrap();
    let mut client = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();

    match client.fetch(0, f64::INFINITY) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ERR_INTERNAL),
        other => panic!("expected in-band ERR_INTERNAL, got {other:?}"),
    }
    assert_eq!(server.metrics().counter(CTR_HANDLER_PANICS), 1);

    // The same connection still answers cheap requests...
    assert_eq!(client.list_frames().unwrap().len(), 1);
    // ...and the listener still admits fresh clients.
    let mut second = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
    assert!(second.stats().unwrap().requests >= 1);
    server.shutdown();
}

#[test]
fn negative_zero_threshold_hits_the_positive_zero_cache_slot() {
    let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (a, _) = client.fetch(0, 0.0).unwrap();
    let (b, _) = client.fetch(0, -0.0).unwrap();
    assert_eq!(a, b);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "-0.0 must reuse the 0.0 extraction");
    assert_eq!(stats.cache_hits, 1);
    server.shutdown();
}
