//! End-to-end observability: the serve metrics registry, the wire `Stats`
//! reply, and the server's local snapshot must all tell the same story,
//! and a trace captured across the whole pipeline must export as valid,
//! monotonic Chrome trace-event JSON.

use accelviz::beam::distribution::Distribution;
use accelviz::core::hybrid::HybridFrame;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::stats::{CTR_CACHE_HITS, CTR_CACHE_MISSES, CTR_FRAMES_SERVED, CTR_REQUESTS};
use accelviz::serve::{Client, FrameServer, ServerConfig};
use accelviz::trace::chrome::{parse_json, trace_json, Json};
use accelviz::trace::registry::Registry;

fn stores(n: usize, particles: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(particles, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

#[test]
fn registry_cache_counts_match_wire_stats_and_cache_counters() {
    let server = FrameServer::spawn_loopback(stores(2, 1_500), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // 2 distinct (frame, threshold) extractions, each refetched once.
    let t0 = threshold_for_budget(&stores(1, 1_500)[0], 400);
    for _ in 0..2 {
        client.fetch(0, t0).unwrap();
        client.fetch(1, f64::INFINITY).unwrap();
    }

    // The wire-reported snapshot...
    let wire = client.stats().unwrap();
    assert_eq!(wire.cache_misses, 2, "two distinct extractions");
    assert_eq!(wire.cache_hits, 2, "each refetched once");
    assert_eq!(wire.frames_served, 4);

    // ...must equal the registry the server accumulates into...
    let reg = server.metrics();
    assert_eq!(reg.counter(CTR_CACHE_HITS), wire.cache_hits);
    assert_eq!(reg.counter(CTR_CACHE_MISSES), wire.cache_misses);
    assert_eq!(reg.counter(CTR_FRAMES_SERVED), wire.frames_served);
    // (the Stats request itself lands in the counter only after its reply
    // is on the wire, so the registry ends up one ahead of the snapshot;
    // poll briefly since that final bump races with the client's return)
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while reg.counter(CTR_REQUESTS) != wire.requests + 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "request counter never settled"
        );
        std::thread::yield_now();
    }

    // ...and the local stats() accessor is the same snapshot source.
    let local = server.stats();
    assert_eq!(local.cache_hits, wire.cache_hits);
    assert_eq!(local.cache_misses, wire.cache_misses);
    assert_eq!(local.latency.total(), reg.counter(CTR_REQUESTS));

    server.shutdown();
}

#[test]
fn two_servers_in_one_process_keep_separate_metrics() {
    let a = FrameServer::spawn_loopback(stores(1, 1_000), ServerConfig::default()).unwrap();
    let b = FrameServer::spawn_loopback(stores(1, 1_000), ServerConfig::default()).unwrap();
    let mut ca = Client::connect(a.addr()).unwrap();
    ca.fetch(0, f64::INFINITY).unwrap();
    ca.fetch(0, f64::INFINITY).unwrap();
    // The counter bump trails the reply slightly; poll for it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while a.stats().frames_served != 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "frame counter never settled"
        );
        std::thread::yield_now();
    }
    assert_eq!(b.stats().frames_served, 0, "server B saw no traffic");
    a.shutdown();
    b.shutdown();
}

/// The golden trace test: run partition → extract → hybrid build with
/// spans enabled on the global registry and validate the exported JSON —
/// it parses, the expected pipeline spans are present, and every span's
/// timestamps are non-negative with children contained in their parents.
#[test]
fn pipeline_trace_exports_valid_monotonic_chrome_json() {
    // The global registry is shared across tests in this binary; use its
    // explicit switch rather than the env var (reading ACCELVIZ_TRACE is
    // once-per-process and other tests must stay un-traced by default).
    let reg = accelviz::trace::global();
    reg.set_spans_enabled(true);
    let ps = Distribution::default_beam().sample(3_000, 7);
    let data = partition(&ps, PlotType::XYZ, BuildParams::default());
    let t = threshold_for_budget(&data, 500);
    let _frame = HybridFrame::from_partition(&data, 0, t, [8, 8, 8]);
    reg.set_spans_enabled(false);

    let doc = parse_json(&trace_json(reg)).expect("export must parse");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();

    let span_events: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let names: Vec<&str> = span_events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["octree.partition", "octree.extract", "core.hybrid_frame"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }

    // Timestamps: non-negative, and logical children contained within
    // their parents' intervals.
    let interval = |e: &Json| -> (f64, f64, f64, Option<f64>) {
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        let dur = e.get("dur").unwrap().as_f64().unwrap();
        let id = e
            .get("args")
            .unwrap()
            .get("span_id")
            .unwrap()
            .as_f64()
            .unwrap();
        let parent = e
            .get("args")
            .unwrap()
            .get("parent_id")
            .and_then(Json::as_f64);
        (ts, dur, id, parent)
    };
    let intervals: Vec<_> = span_events.iter().map(|e| interval(e)).collect();
    for &(ts, dur, _, _) in &intervals {
        assert!(ts >= 0.0 && dur >= 0.0);
    }
    for &(ts, dur, _, parent) in &intervals {
        let Some(pid) = parent else { continue };
        let Some(&(pts, pdur, _, _)) = intervals.iter().find(|&&(_, _, id, _)| id == pid) else {
            continue; // parent span may still have been open at export
        };
        assert!(
            ts >= pts && ts + dur <= pts + pdur + 1e-6,
            "child [{ts}, {}] escapes parent [{pts}, {}]",
            ts + dur,
            pts + pdur
        );
    }
}

#[test]
fn private_registry_spans_do_not_leak_into_the_global_trace() {
    let private = Registry::with_spans();
    drop(private.span("private.only"));
    let global_json = trace_json(accelviz::trace::global());
    assert!(!global_json.contains("private.only"));
    assert!(trace_json(&private).contains("private.only"));
}
