//! Concurrency acceptance for the frame service, run against *both*
//! connection backends: a 200-client storm must come back bit-identical
//! with the reactor's OS-thread count bounded by its fixed worker pool,
//! a connect flood past the connection cap must be answered in-band
//! without spawning a thread per shed socket, shutdown of an idle server
//! must complete in bounded time without waiting for a next connection,
//! and the server-side chaos hook must be survivable on either backend.

use accelviz::beam::distribution::Distribution;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::fault::{FaultDirection, FaultEvent, FaultKind};
use accelviz::serve::protocol::{read_response, write_request, Request, Response, ERR_BUSY};
use accelviz::serve::stats::{CTR_HANDLER_PANICS, CTR_SHED_CONNECTIONS};
use accelviz::serve::{
    Client, ClientConfig, FaultPlan, FrameServer, RetryPolicy, ServeBackend, ServerConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn stores(n: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(600, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn backends() -> Vec<ServeBackend> {
    if cfg!(unix) {
        vec![ServeBackend::Threaded, ServeBackend::Reactor]
    } else {
        vec![ServeBackend::Threaded]
    }
}

/// Live OS threads in this process, when the platform exposes them.
fn live_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.count())
}

/// Spins until `done` reaches `target` (all parked at the barrier), then
/// returns a thread-count snapshot taken while every party is alive.
fn snapshot_when_parked(done: &AtomicUsize, target: usize) -> Option<usize> {
    let deadline = Instant::now() + Duration::from_secs(30);
    while done.load(Ordering::SeqCst) < target {
        assert!(Instant::now() < deadline, "storm never converged");
        std::thread::sleep(Duration::from_millis(2));
    }
    live_threads()
}

/// Tentpole acceptance: ≥200 simultaneous loopback clients against a
/// small fixed worker pool, every frame bit-identical to an uncontended
/// fetch — and, on the reactor, no thread-per-connection anywhere: the
/// process grows by exactly the client threads the test itself spawned.
#[test]
fn two_hundred_clients_fetch_bit_identical_frames() {
    const CLIENTS: usize = 200;
    let data = stores(2);
    for backend in backends() {
        let config = ServerConfig {
            backend,
            worker_threads: 3,
            max_connections: 256,
            ..ServerConfig::default()
        };
        let before_server = live_threads();
        let server = FrameServer::spawn_loopback(data.clone(), config).unwrap();
        assert_eq!(server.backend(), backend);

        if backend == ServeBackend::Reactor {
            if let (Some(before), Some(after)) = (before_server, live_threads()) {
                // One reactor loop + the fixed pool, nothing else.
                assert!(
                    after <= before + config.worker_threads + 2,
                    "reactor spawned {} threads, want <= pool {} + loop",
                    after - before,
                    config.worker_threads
                );
            }
        }

        // The uncontended reference fetch, per frame.
        let mut reference = Vec::new();
        let mut probe = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
        for frame in 0..data.len() as u32 {
            reference.push(probe.fetch(frame, f64::INFINITY).unwrap().0);
        }
        drop(probe);

        let reference = Arc::new(reference);
        let baseline = live_threads();
        let parked = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(Barrier::new(CLIENTS + 1));
        let addr = server.addr();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let reference = Arc::clone(&reference);
                let parked = Arc::clone(&parked);
                let release = Arc::clone(&release);
                std::thread::spawn(move || {
                    let mut client = Client::connect_with(addr, ClientConfig::no_retry()).unwrap();
                    let frame = (i % reference.len()) as u32;
                    let (got, _) = client.fetch(frame, f64::INFINITY).unwrap();
                    let identical = got == reference[frame as usize];
                    // Hold the connection open until everyone is in, so
                    // the snapshot sees all 200 sessions live at once.
                    parked.fetch_add(1, Ordering::SeqCst);
                    release.wait();
                    identical
                })
            })
            .collect();

        let during = snapshot_when_parked(&parked, CLIENTS);
        if backend == ServeBackend::Reactor {
            if let (Some(baseline), Some(during)) = (baseline, during) {
                // The only growth is the 200 client threads this test
                // spawned; a thread-per-connection server would add
                // ~200 more on top.
                assert!(
                    during <= baseline + CLIENTS + 4,
                    "{during} threads during the storm against a baseline of \
                     {baseline}: the reactor must not spawn per-connection threads"
                );
            }
        }
        release.wait();
        for handle in workers {
            assert!(
                handle.join().expect("client thread must not panic"),
                "a storm client saw a frame differing from the reference"
            );
        }
        assert_eq!(server.metrics().counter(CTR_HANDLER_PANICS), 0);
        server.shutdown();
    }
}

/// Regression for the shed path: a connect flood past the connection cap
/// used to spawn one unbounded OS thread per shed socket. Now every shed
/// arrival is counted and answered in-band (`ERR_BUSY`) or closed
/// cleanly, and the process thread count during the flood is just the
/// flood's own threads.
#[test]
fn connect_flood_past_the_cap_is_shed_without_thread_growth() {
    const FLOOD: usize = 48;
    let data = stores(1);
    for backend in backends() {
        let config = ServerConfig {
            backend,
            max_connections: 1,
            ..ServerConfig::default()
        };
        let server = FrameServer::spawn_loopback(data.clone(), config).unwrap();

        // Occupy the only slot, and prove it is actually held.
        let mut admitted = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
        admitted.fetch(0, f64::INFINITY).unwrap();

        let baseline = live_threads();
        let parked = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(Barrier::new(FLOOD + 1));
        let addr = server.addr();
        let floods: Vec<_> = (0..FLOOD)
            .map(|_| {
                let parked = Arc::clone(&parked);
                let release = Arc::clone(&release);
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    // Park *before* sending anything: the old shed path
                    // blocked one fresh thread per connection right here,
                    // waiting for this request to arrive.
                    parked.fetch_add(1, Ordering::SeqCst);
                    release.wait();
                    probe_shed_outcome(stream)
                })
            })
            .collect();

        let during = snapshot_when_parked(&parked, FLOOD);
        if let (Some(baseline), Some(during)) = (baseline, during) {
            assert!(
                during <= baseline + FLOOD + 4,
                "{during} threads during a {FLOOD}-connection flood against a \
                 baseline of {baseline}: shed connections must not each get a thread"
            );
        }
        release.wait();
        let mut busy = 0usize;
        let mut closed = 0usize;
        for handle in floods {
            match handle.join().expect("flood thread must not panic") {
                ShedOutcome::Busy => busy += 1,
                ShedOutcome::Closed => closed += 1,
            }
        }
        assert_eq!(busy + closed, FLOOD, "every flood socket is accounted for");
        assert!(busy >= 1, "at least some arrivals get the in-band ERR_BUSY");
        // Counted, not silently dropped — every arrival shows on the shed
        // counter even when the bounded answer queue was full.
        assert_eq!(
            server.metrics().counter(CTR_SHED_CONNECTIONS),
            FLOOD as u64,
            "every shed arrival must be counted"
        );

        // The admitted session never noticed the flood.
        admitted.fetch(0, f64::INFINITY).unwrap();
        server.shutdown();
    }
}

enum ShedOutcome {
    /// The server answered `ERR_BUSY` in-band.
    Busy,
    /// The socket was closed (or reset) without a reply — the bounded
    /// answer queue was full.
    Closed,
}

fn probe_shed_outcome(mut stream: TcpStream) -> ShedOutcome {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut hello = Vec::new();
    write_request(&mut hello, &Request::Hello { version: 1 }).unwrap();
    if stream.write_all(&hello).is_err() {
        return ShedOutcome::Closed;
    }
    let mut reply = Vec::new();
    if stream.read_to_end(&mut reply).is_err() && reply.is_empty() {
        return ShedOutcome::Closed;
    }
    if reply.is_empty() {
        return ShedOutcome::Closed;
    }
    match read_response(&mut reply.as_slice()) {
        Ok((Response::Error { code, message }, _)) => {
            assert_eq!(code, ERR_BUSY);
            assert!(message.contains("retry"), "hint missing: {message}");
            ShedOutcome::Busy
        }
        other => panic!("shed socket got an unexpected reply: {other:?}"),
    }
}

/// Regression for the acceptor wake: shutting down an idle server used to
/// block until `listener.incoming()` happened to yield one more
/// connection. Both backends must now observe shutdown deterministically.
#[test]
fn idle_server_shutdown_latency_is_bounded() {
    let data = stores(1);
    for backend in backends() {
        let config = ServerConfig {
            backend,
            ..ServerConfig::default()
        };
        let server = FrameServer::spawn_loopback(data.clone(), config).unwrap();
        // Fully idle: nobody connected, nobody will.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        server.shutdown();
        let latency = t0.elapsed();
        assert!(
            latency < Duration::from_secs(2),
            "idle {backend:?} shutdown took {latency:?}; the acceptor was not woken"
        );
    }
}

/// The server-side chaos hook on both backends: a session whose *server*
/// end suffers scripted delays, reply truncation, and disconnects in both
/// directions still delivers every frame bit-identical to a fault-free
/// run, through client retries alone, with zero handler panics.
#[test]
fn server_side_chaos_is_survivable_on_both_backends() {
    let data = stores(3);

    // Fault-free reference, served once from a clean server.
    let clean = FrameServer::spawn_loopback(data.clone(), ServerConfig::default()).unwrap();
    let mut probe = Client::connect_with(clean.addr(), ClientConfig::no_retry()).unwrap();
    let reference: Vec<_> = (0..data.len() as u32)
        .map(|frame| probe.fetch(frame, f64::INFINITY).unwrap().0)
        .collect();
    drop(probe);
    clean.shutdown();

    for backend in backends() {
        let config = ServerConfig {
            backend,
            ..ServerConfig::default()
        };
        // Server-side lanes: Read faults hit requests, Write faults hit
        // replies. The trio every chaos plan must carry — a delay, a
        // truncated reply, disconnects both ways — placed inside the
        // first frame's reply volume so a completed run provably
        // survived them all.
        let plan = FaultPlan::new(vec![
            FaultEvent {
                direction: FaultDirection::Write,
                at_byte: 64,
                kind: FaultKind::Delay(Duration::from_millis(5)),
            },
            FaultEvent {
                direction: FaultDirection::Write,
                at_byte: 3_000,
                kind: FaultKind::Truncate,
            },
            FaultEvent {
                direction: FaultDirection::Write,
                at_byte: 9_000,
                kind: FaultKind::Disconnect,
            },
            FaultEvent {
                direction: FaultDirection::Read,
                at_byte: 400,
                kind: FaultKind::Disconnect,
            },
        ]);
        let script = plan.script();
        let server = FrameServer::spawn_chaos(data.clone(), config, Arc::clone(&script)).unwrap();

        let retry = ClientConfig {
            retry: Some(RetryPolicy::fast(20_260_807)),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(server.addr(), retry).unwrap();
        for (i, want) in reference.iter().enumerate() {
            let (got, _) = client.fetch(i as u32, f64::INFINITY).unwrap();
            assert_eq!(
                &got, want,
                "frame {i} over a faulted {backend:?} server differs from clean run"
            );
        }

        let fired = script.stats();
        assert!(fired.delays >= 1, "no delay fired: {fired:?}");
        assert!(fired.truncations >= 1, "no truncation fired: {fired:?}");
        assert!(fired.disconnects >= 1, "no disconnect fired: {fired:?}");
        assert_eq!(server.metrics().counter(CTR_HANDLER_PANICS), 0);
        server.shutdown();
    }
}
