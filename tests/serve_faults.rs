//! Chaos matrix for the resilience layer: a seeded fault plan injecting
//! delays, disconnects, truncations, and bit flips into a live session
//! must be survivable — every frame delivered bit-identical to a
//! fault-free run — while retries-disabled behavior matches the
//! pre-resilience client, exhausted retries degrade to a stale frame
//! instead of erroring, and an overloaded server sheds with `ERR_BUSY`.
//!
//! The seed comes from `ACCELVIZ_CHAOS_SEED` (CI runs the suite under
//! two fixed seeds); every run is reproducible from its seed alone.
//!
//! NOTE for CI: no test in this file may legitimately print
//! "panicked at" — the chaos job greps the output for exactly that
//! string to prove no panic escapes a connection handler. Panic
//! *isolation* (which intentionally panics a handler) is exercised in
//! `serve_robustness.rs` instead.

use accelviz::beam::distribution::Distribution;
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::serve::client::{FaultyConnector, TcpConnector};
use accelviz::serve::protocol::ERR_BUSY;
use accelviz::serve::stats::{CTR_HANDLER_PANICS, CTR_SHED_CONNECTIONS, CTR_SHED_EXTRACTIONS};
use accelviz::serve::{
    Client, ClientConfig, FaultPlan, FrameServer, RemoteFrames, RetryPolicy, ServeError,
    ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

const FRAMES: usize = 5;

fn chaos_seed() -> u64 {
    std::env::var("ACCELVIZ_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn stores(n: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(800, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn fast_retry(seed: u64) -> ClientConfig {
    ClientConfig {
        retry: Some(RetryPolicy::fast(seed)),
        ..ClientConfig::default()
    }
}

/// The acceptance criterion: a 5-frame session under a seeded plan with
/// ≥1 disconnect, ≥1 truncation, and ≥1 delay completes with every frame
/// bit-identical to the fault-free run, visible in the fault and client
/// counters, with zero handler panics server-side.
#[test]
fn chaos_session_delivers_frames_bit_identical_to_fault_free_run() {
    let seed = chaos_seed();
    let server = FrameServer::spawn_loopback(stores(FRAMES), ServerConfig::default()).unwrap();

    // Fault-free reference run, and the measured reply volume that
    // calibrates the chaos plan's byte span.
    let mut reference = Vec::new();
    let mut reply_bytes = 0u64;
    let mut clean = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
    for frame in 0..FRAMES as u32 {
        let (f, m) = clean.fetch(frame, f64::INFINITY).unwrap();
        reply_bytes += m.wire_bytes;
        reference.push(f);
    }
    drop(clean);

    // Chaos run: the mandatory delay/disconnect/truncation land in the
    // first half of the reply volume, so a completed session provably
    // survived all three.
    let plan = FaultPlan::chaos(seed, 8, reply_bytes);
    let script = plan.script();
    let config = fast_retry(seed);
    let connector = FaultyConnector::new(
        TcpConnector::new(server.addr(), &config).unwrap(),
        Arc::clone(&script),
    );
    let client = Client::connect_via(Box::new(connector), config).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, FRAMES);

    // The chaos session negotiated the compressed AVWF v2 encoding, so
    // the bit-identity assertions below also prove the v2 codec (and its
    // decoded-payload checksum) under every injected fault — including
    // across reconnects, whose re-handshakes must re-negotiate v2.
    assert_eq!(
        remote.client().negotiated_version(),
        accelviz::serve::wire::V2
    );

    use accelviz::core::viewer::FrameSource;
    for (i, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(i).unwrap();
        assert!(!load.degraded, "frame {i} must be genuine, not a fallback");
        assert_eq!(&*got, want, "frame {i} differs from the fault-free run");
    }
    assert_eq!(
        remote.client().negotiated_version(),
        accelviz::serve::wire::V2,
        "reconnects mid-chaos must land back on v2"
    );

    // Compression was real: the v2 frame payloads on the wire undercut
    // what the same frames cost raw.
    let stats = remote.client().stats().unwrap();
    assert!(
        stats.frame_bytes_wire < stats.frame_bytes_raw,
        "v2 session moved {} wire bytes against {} raw",
        stats.frame_bytes_wire,
        stats.frame_bytes_raw
    );

    // The plan actually fired its mandatory trio.
    let fired = script.stats();
    assert!(fired.delays >= 1, "no delay fired: {fired:?}");
    assert!(fired.disconnects >= 1, "no disconnect fired: {fired:?}");
    assert!(fired.truncations >= 1, "no truncation fired: {fired:?}");

    // The resilience layer did real work and it is all on the counters.
    let cs = remote.client().client_stats();
    assert!(cs.retries >= 1, "faults must have forced retries: {cs:?}");
    assert!(
        cs.reconnects >= 1,
        "a disconnect must force a reconnect: {cs:?}"
    );
    assert_eq!(remote.degraded_loads, 0);

    // No injected fault may escalate into a server-side handler panic.
    assert_eq!(server.metrics().counter(CTR_HANDLER_PANICS), 0);
    server.shutdown();
}

/// The chaos matrix extended to the scale-out layer: the same seeded
/// fault plan injected between the client and a 2-shard
/// [`ShardedFrameService`] router must still deliver every frame
/// bit-identical to the fault-free run — the router's proxy hop adds no
/// new way to corrupt or lose a frame — with zero handler panics on the
/// router and on both shards.
///
/// [`ShardedFrameService`]: accelviz::serve::ShardedFrameService
#[test]
fn sharded_chaos_session_delivers_bit_identical_frames() {
    use accelviz::serve::router::CTR_ROUTER_HANDLER_PANICS;
    use accelviz::serve::{RouterConfig, ShardedFrameService};

    let seed = chaos_seed();
    let service = ShardedFrameService::spawn_loopback(
        stores(FRAMES),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();

    // Fault-free reference through the router, measuring the reply
    // volume that calibrates the chaos plan.
    let mut reference = Vec::new();
    let mut reply_bytes = 0u64;
    let mut clean = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    for frame in 0..FRAMES as u32 {
        let (f, m) = clean.fetch(frame, f64::INFINITY).unwrap();
        reply_bytes += m.wire_bytes;
        reference.push(f);
    }
    drop(clean);

    // Chaos on the client↔router leg; the router↔shard legs stay clean
    // (shard death is covered by `serve_shard.rs`).
    let plan = FaultPlan::chaos(seed, 8, reply_bytes);
    let script = plan.script();
    let config = fast_retry(seed);
    let connector = FaultyConnector::new(
        TcpConnector::new(service.addr(), &config).unwrap(),
        Arc::clone(&script),
    );
    let client = Client::connect_via(Box::new(connector), config).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, FRAMES);

    use accelviz::core::viewer::FrameSource;
    for (i, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(i).unwrap();
        assert!(!load.degraded, "frame {i} must be genuine, not a fallback");
        assert_eq!(&*got, want, "frame {i} differs from the fault-free run");
    }
    assert_eq!(remote.degraded_loads, 0);

    let fired = script.stats();
    assert!(fired.disconnects >= 1, "no disconnect fired: {fired:?}");
    let cs = remote.client().client_stats();
    assert!(
        cs.reconnects >= 1,
        "chaos must have forced reconnects: {cs:?}"
    );

    assert_eq!(
        service
            .router()
            .metrics()
            .counter(CTR_ROUTER_HANDLER_PANICS),
        0
    );
    for s in 0..service.shard_count() {
        assert_eq!(service.shard(s).metrics().counter(CTR_HANDLER_PANICS), 0);
    }
    service.shutdown();
}

/// With retries disabled the client behaves like the pre-resilience
/// code: the first transport fault surfaces as an error, nothing is
/// retried behind the caller's back.
#[test]
fn retries_disabled_fails_fast_like_the_old_client() {
    use accelviz::serve::fault::{FaultDirection, FaultEvent, FaultKind};
    let server = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();

    // One disconnect placed past the HelloAck (~30 bytes) so the
    // handshake succeeds and the first frame read dies.
    let plan = FaultPlan::new(vec![FaultEvent {
        direction: FaultDirection::Read,
        at_byte: 64,
        kind: FaultKind::Disconnect,
    }]);
    let script = plan.script();
    let config = ClientConfig::no_retry();
    let connector = FaultyConnector::new(
        TcpConnector::new(server.addr(), &config).unwrap(),
        Arc::clone(&script),
    );
    let mut client = Client::connect_via(Box::new(connector), config).unwrap();

    let err = client.fetch(0, f64::INFINITY).unwrap_err();
    assert!(
        err.is_transient(),
        "a reset is transient, just not retried: {err}"
    );
    let cs = client.client_stats();
    assert_eq!(cs.retries, 0, "no_retry must never retry");
    assert_eq!(cs.reconnects, 0, "no_retry must never reconnect mid-call");
    assert_eq!(script.stats().disconnects, 1);
    server.shutdown();
}

/// Exhausted retries degrade to the most recent resident frame — flagged
/// — instead of erroring, and the viewer session keeps rendering it.
#[test]
fn exhausted_retries_degrade_to_a_stale_resident_frame() {
    let seed = chaos_seed();
    let server = FrameServer::spawn_loopback(stores(3), ServerConfig::default()).unwrap();
    let addr = server.addr();

    // A tight policy so exhaustion takes milliseconds, not seconds.
    let config = ClientConfig {
        retry: Some(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            budget: Duration::from_secs(2),
            ..RetryPolicy::seeded(seed)
        }),
        ..ClientConfig::default()
    };
    let client = Client::connect_with(addr, config).unwrap();
    let remote = RemoteFrames::new(client, f64::INFINITY, 4);
    let mut session = ViewerSession::open_with(Box::new(remote));

    let healthy = session.apply(SessionOp::StepTo(1));
    assert!(!healthy.failed && !healthy.degraded);
    assert_eq!(session.current(), 1);
    let genuine_step = session.frame().step;

    // Kill the data path entirely, then step again.
    server.shutdown();
    let cost = session.apply(SessionOp::StepTo(2));
    assert!(
        cost.degraded,
        "a dead server must degrade, not freeze: {cost:?}"
    );
    assert!(!cost.failed, "degradation is not a failure");
    assert_eq!(
        session.current(),
        1,
        "the session must not pretend it reached frame 2"
    );
    assert_eq!(
        session.frame().step,
        genuine_step,
        "stale frame is the last good one"
    );

    // The degraded session still renders — boundary edits and drawing
    // are all local state, untouched by the dead link.
    let boundary = session.preprocessing_boundary();
    session.apply(SessionOp::SetBoundary(boundary));
    let mut fb = Framebuffer::new(48, 48);
    let stats = session.render(&mut fb);
    assert!(stats.points_drawn > 0, "degraded session must keep drawing");
    assert!(stats.volume_samples > 0);
}

/// Past the connection cap the server sheds new arrivals with one
/// in-band `ERR_BUSY` (carrying a retry hint) while serving the admitted
/// client untouched; a retrying client gets in once the slot frees.
#[test]
fn connection_cap_sheds_with_err_busy_and_serves_the_rest() {
    let seed = chaos_seed();
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = FrameServer::spawn_loopback(stores(2), config).unwrap();

    let mut admitted = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();

    // Second arrival without retries: shed, with the hint in-band.
    match Client::connect_with(server.addr(), ClientConfig::no_retry()) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ERR_BUSY);
            assert!(message.contains("retry"), "hint missing: {message}");
        }
        other => panic!(
            "expected ERR_BUSY shed, got {:?}",
            other.map(|_| "a client")
        ),
    }
    assert!(server.metrics().counter(CTR_SHED_CONNECTIONS) >= 1);

    // The admitted client never noticed.
    let (frame, _) = admitted.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 0);

    // Free the slot; a retrying client absorbs the handoff race and
    // gets in.
    drop(admitted);
    let mut patient = Client::connect_with(server.addr(), fast_retry(seed)).unwrap();
    let (frame, _) = patient.fetch(1, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 1);
    server.shutdown();
}

/// Past the in-flight extraction limit, frame requests that would start
/// a new extraction are shed with `ERR_BUSY` on their live connection —
/// the connection survives and cheap requests still flow.
#[test]
fn extraction_limit_sheds_fresh_extractions_in_band() {
    // Limit 0: every fresh extraction is shed — fully deterministic.
    let config = ServerConfig {
        max_inflight_extractions: 0,
        ..ServerConfig::default()
    };
    let server = FrameServer::spawn_loopback(stores(1), config).unwrap();
    let mut client = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();

    match client.fetch(0, f64::INFINITY) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ERR_BUSY);
            assert!(message.contains("retry"), "hint missing: {message}");
        }
        other => panic!("expected ERR_BUSY shed, got {other:?}"),
    }
    assert!(server.metrics().counter(CTR_SHED_EXTRACTIONS) >= 1);

    // The same connection keeps serving non-extraction requests.
    assert_eq!(client.list_frames().unwrap().len(), 1);
    assert!(client.stats().unwrap().requests >= 1);
    server.shutdown();
}
