//! Cross-crate edge cases: degenerate geometry, boundary semantics, and
//! budget extremes that the main suites don't reach.

use accelviz::fieldlines::line::FieldLine;
use accelviz::fieldlines::sos::{sos_strip, SosParams};
use accelviz::fieldlines::tube::{tube_triangles, TubeParams};
use accelviz::math::Vec3;

#[test]
fn extraction_threshold_is_strictly_exclusive() {
    // Particles in leaves with density exactly equal to the threshold are
    // DISCARDED ("particles in octree nodes below the threshold density
    // are stored") — the boundary matters for reproducibility.
    use accelviz::beam::distribution::Distribution;
    use accelviz::octree::builder::{partition, BuildParams};
    use accelviz::octree::extraction::extract;
    use accelviz::octree::plots::PlotType;
    let ps = Distribution::default_beam().sample(2_000, 3);
    let data = partition(&ps, PlotType::XYZ, BuildParams::default());
    // Pick an actual leaf density as the threshold.
    let leaves = data.sorted_leaves();
    let mid_density = data.tree().nodes[leaves[leaves.len() / 2] as usize].density;
    let ex = extract(&data, mid_density);
    for &li in leaves {
        let n = &data.tree().nodes[li as usize];
        if n.density == mid_density && n.len > 0 {
            // The group at exactly the threshold is not in the prefix.
            assert!(
                n.offset >= ex.particles.len() as u64,
                "threshold-equal leaf must be excluded"
            );
        }
    }
}

#[test]
fn all_particles_in_one_cell_still_renders() {
    use accelviz::beam::particle::Particle;
    use accelviz::math::Aabb;
    use accelviz::octree::density::DensityGrid;
    use accelviz::octree::plots::PlotType;
    // A degenerate "beam": every particle at the same point.
    let ps: Vec<Particle> = (0..500)
        .map(|_| Particle::at_rest(Vec3::new(0.5, 0.5, 0.5)))
        .collect();
    let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
    let grid = DensityGrid::from_particles(&ps, PlotType::XYZ, bounds, [8, 8, 8]);
    assert_eq!(grid.total() as usize, 500);
    assert_eq!(grid.max_value(), 500.0);
    // (0.5, 0.5, 0.5) is the lower corner of cell (4,4,4): its center is
    // at 0.5625, where the max-normalized sample is 1; at the shared
    // corner trilinear interpolation gives 1/8.
    assert!((grid.sample_normalized(Vec3::splat(0.5625)) - 1.0).abs() < 1e-9);
    assert!((grid.sample_normalized(Vec3::splat(0.5)) - 0.125).abs() < 1e-9);
    assert!(grid.sample_normalized(Vec3::new(0.06, 0.06, 0.06)) < 0.01);
}

#[test]
fn frame_cache_admits_oversized_frames_without_deadlock() {
    use accelviz::core::viewer::FrameCache;
    use accelviz::render::texmem::TextureMemory;
    // One frame larger than the whole budget: the cache evicts everything
    // and still loads it (the viewer must show *something*), then the next
    // request evicts it in turn.
    let cache = FrameCache::new(
        vec![(1000, 10), (200, 10)],
        500,
        1e6,
        TextureMemory::new(1 << 20, 1e9),
    );
    let big = cache.step_to(0);
    assert!(!big.cache_hit);
    assert_eq!(big.bytes_loaded, 1000);
    assert_eq!(cache.resident_count(), 1);
    let small = cache.step_to(1);
    assert!(!small.cache_hit);
    // The oversized frame was evicted to fit within budget again.
    assert_eq!(cache.resident_count(), 1);
}

#[test]
fn sos_strip_tolerates_duplicate_points() {
    // Stagnation regions can emit repeated vertices; the strip must stay
    // finite (no NaN side vectors) and keep its 2-per-point structure.
    let mut line = FieldLine::new();
    line.push(Vec3::ZERO, Vec3::UNIT_X, 1.0);
    line.push(Vec3::ZERO, Vec3::UNIT_X, 1.0); // duplicate
    line.push(Vec3::new(0.1, 0.0, 0.0), Vec3::UNIT_X, 1.0);
    let verts = sos_strip(&line, Vec3::new(0.0, 0.0, 5.0), &SosParams::default());
    assert_eq!(verts.len(), 6);
    for v in &verts {
        assert!(v.pos.is_finite());
        assert!(v.uv.0.is_finite() && v.uv.1.is_finite());
    }
}

#[test]
fn tube_tolerates_sharp_reversals() {
    // A hairpin: the parallel-transported frame must not blow up where
    // the tangent flips.
    let mut line = FieldLine::new();
    for i in 0..5 {
        line.push(Vec3::new(i as f64 * 0.1, 0.0, 0.0), Vec3::UNIT_X, 1.0);
    }
    for i in (0..5).rev() {
        line.push(Vec3::new(i as f64 * 0.1, 0.01, 0.0), -Vec3::UNIT_X, 1.0);
    }
    let tris = tube_triangles(&line, Vec3::new(0.0, 0.0, 5.0), &TubeParams::default());
    assert!(!tris.is_empty());
    for tri in &tris {
        for v in tri {
            assert!(v.pos.is_finite(), "tube vertex must stay finite");
            assert!(v.color.r.is_finite());
        }
    }
}

#[test]
fn transfer_pair_with_zero_ramp_is_a_hard_switch() {
    use accelviz::core::transfer::TransferFunctionPair;
    let pair = TransferFunctionPair::linked_at(0.5, 0.0);
    assert_eq!(pair.point.fraction(0.4999), 1.0);
    assert_eq!(pair.point.fraction(0.5001), 0.0);
    assert_eq!(pair.volume.weight(0.4999), 0.0);
    assert_eq!(pair.volume.weight(0.5001), 1.0);
    // Inverse invariant holds even at the discontinuity's two sides.
    assert!((pair.coverage(0.4999) - 1.0).abs() < 1e-12);
    assert!((pair.coverage(0.5001) - 1.0).abs() < 1e-12);
}

#[test]
fn seeding_budget_of_zero_and_one() {
    use accelviz::emsim::sample::FieldSampler;
    use accelviz::fieldlines::seeding::{seed_lines, SeedingParams};
    use accelviz::math::Aabb;
    let field = FieldSampler::from_vectors(
        [4, 4, 4],
        Aabb::new(Vec3::ZERO, Vec3::ONE),
        vec![Vec3::UNIT_Z; 64],
    );
    let zero = seed_lines(
        &field,
        &SeedingParams {
            n_lines: 0,
            ..Default::default()
        },
    );
    assert!(zero.is_empty());
    let one = seed_lines(
        &field,
        &SeedingParams {
            n_lines: 1,
            ..Default::default()
        },
    );
    assert_eq!(one.len(), 1);
    assert!(!one[0].line.is_empty());
}

#[test]
fn cavity_with_single_cell_and_no_ports_is_simply_connected() {
    use accelviz::emsim::cavity::{CavityGeometry, CavitySpec};
    let g = CavityGeometry::new(CavitySpec {
        cells: 1,
        with_ports: false,
        ..CavitySpec::three_cell()
    });
    // No iris planes exist in a single cell: the entire cylinder interior
    // is vacuum.
    assert!(g.inside(Vec3::new(0.0, 0.0, 0.4)));
    assert!(g.inside(Vec3::new(0.9, 0.0, 0.4)));
    assert!(g.inside(Vec3::new(0.9, 0.0, 0.01)));
    assert!(
        !g.inside(Vec3::new(0.0, 1.05, 0.4)),
        "no port punches the wall"
    );
}

#[test]
fn resampled_lines_survive_compact_roundtrip() {
    use accelviz::fieldlines::compact::{deserialize_lines, serialize_lines};
    let mut line = FieldLine::new();
    for i in 0..100 {
        let a = i as f64 * 0.1;
        line.push(Vec3::new(a.cos(), a.sin(), 0.05 * a), Vec3::UNIT_X, 1.0);
    }
    let coarse = line.resample(0.3);
    let mut buf = Vec::new();
    serialize_lines(&mut buf, std::slice::from_ref(&coarse)).unwrap();
    let back = deserialize_lines(&mut buf.as_slice()).unwrap();
    assert_eq!(back[0].len(), coarse.len());
    for (a, b) in coarse.points.iter().zip(&back[0].points) {
        assert!(a.distance(*b) < 1e-5);
    }
}
