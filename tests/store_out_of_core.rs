//! End-to-end acceptance for the out-of-core run store: a `FrameServer`
//! backed by a run file whose particle payload exceeds its residency
//! budget serves every frame bit-identical to in-memory extraction,
//! pages frames in and out under the byte budget (visible on the
//! residency counters), and interoperates with a v1-pinned client over
//! the uncompressed wire encoding.

use accelviz::beam::distribution::Distribution;
use accelviz::core::hybrid::HybridFrame;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::wire::{V1, V2};
use accelviz::serve::{Client, ClientConfig, FrameServer, ServerConfig};
use accelviz::store::run::write_run_file;
use accelviz::store::ResidentRun;
use std::path::PathBuf;
use std::sync::Arc;

const FRAMES: usize = 6;
const PARTICLES: usize = 900;
const PARTICLE_BYTES: u64 = 48;

fn build_frames() -> Vec<PartitionedData> {
    (0..FRAMES)
        .map(|i| {
            let ps = Distribution::default_beam().sample(PARTICLES, i as u64 + 7);
            partition(&ps, PlotType::X_PX_Y, BuildParams::default())
        })
        .collect()
}

fn run_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("accelviz-ooc-{tag}-{}", std::process::id()))
}

/// The acceptance criterion for the store tentpole: the served run's
/// particle bytes exceed the residency budget, yet every frame a client
/// fetches is bit-identical to extracting from the in-memory partition.
#[test]
fn stored_server_serves_a_run_bigger_than_its_residency_budget() {
    let frames = build_frames();
    let path = run_path("serve");
    write_run_file(&path, &frames, 4_096).unwrap();

    // Two frames' worth of budget against six frames of data.
    let budget = 2 * PARTICLES as u64 * PARTICLE_BYTES;
    let run = Arc::new(ResidentRun::open(&path, budget).unwrap());
    assert!(
        run.total_particle_bytes() > budget,
        "the run must not fit: {} B of particles, {budget} B of budget",
        run.total_particle_bytes()
    );

    // A two-entry extraction cache, so revisiting frames cannot be
    // absorbed above the residency layer — stale frames must re-page
    // from disk.
    let config = ServerConfig {
        cache_capacity: 2,
        ..ServerConfig::default()
    };
    let dims = config.volume_dims;
    let server = FrameServer::spawn_stored_loopback(Arc::clone(&run), config).unwrap();
    let mut client = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
    assert_eq!(client.negotiated_version(), V2);

    // The catalog answers from directory metadata alone — correct
    // counts, no particle I/O beyond what opening already did.
    let catalog = client.list_frames().unwrap();
    assert_eq!(catalog.len(), FRAMES);
    for (i, info) in catalog.iter().enumerate() {
        assert_eq!(info.particles, PARTICLES as u64, "frame {i}");
        // 900 particles fit the 1000-point default budget whole, so the
        // suggested threshold is "keep everything".
        assert!(info.default_threshold > 0.0);
    }

    // Every frame, twice over (forward then backward, so the second
    // pass re-pages evicted frames), bit-identical to local extraction.
    for &threshold in &[f64::INFINITY, 2.5] {
        for i in (0..FRAMES).chain((0..FRAMES).rev()) {
            let (got, _) = client.fetch(i as u32, threshold).unwrap();
            let want = HybridFrame::from_partition(&frames[i], i, threshold, dims);
            assert_eq!(got, want, "frame {i} at threshold {threshold}");
        }
    }

    // The residency layer did real paging under its budget.
    let rs = run.stats();
    assert!(rs.resident_bytes <= rs.budget_bytes);
    assert!(
        rs.resident_frames <= 2,
        "budget admits two frames, {} resident",
        rs.resident_frames
    );
    assert!(
        rs.cold_loads > FRAMES as u64,
        "revisits must re-page: {rs:?}"
    );
    assert!(rs.evictions >= 1, "an over-budget run must evict: {rs:?}");
    assert!(rs.bytes_read >= rs.cold_loads * PARTICLES as u64 * PARTICLE_BYTES);

    // The v2 session moved compressed frame payloads.
    let stats = client.stats().unwrap();
    assert!(
        stats.frame_bytes_wire < stats.frame_bytes_raw,
        "v2 session moved {} wire bytes against {} raw",
        stats.frame_bytes_wire,
        stats.frame_bytes_raw
    );
    assert!(stats.compression_ratio() > 1.0);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A client pinned to protocol v1 talks to the same stored-backend
/// server over the uncompressed encoding and gets the same frames —
/// the compatibility half of the AVWF v2 rollout.
#[test]
fn v1_pinned_clients_get_identical_frames_from_a_stored_server() {
    let frames = build_frames();
    let path = run_path("v1");
    write_run_file(&path, &frames, 4_096).unwrap();

    let budget = 2 * PARTICLES as u64 * PARTICLE_BYTES;
    let run = Arc::new(ResidentRun::open(&path, budget).unwrap());
    let config = ServerConfig::default();
    let dims = config.volume_dims;
    let server = FrameServer::spawn_stored_loopback(run, config).unwrap();

    let mut old = Client::connect_with(
        server.addr(),
        ClientConfig {
            max_version: V1,
            ..ClientConfig::no_retry()
        },
    )
    .unwrap();
    assert_eq!(old.negotiated_version(), V1, "a v1 cap must stick");

    for (i, data) in frames.iter().enumerate() {
        let (got, _) = old.fetch(i as u32, f64::INFINITY).unwrap();
        let want = HybridFrame::from_partition(data, i, f64::INFINITY, dims);
        assert_eq!(got, want, "frame {i} over the v1 wire");
    }

    // A v1 stats reply has no byte-counter extension; the fields read
    // back zero even though the server is counting.
    let stats = old.stats().unwrap();
    assert_eq!(stats.frame_bytes_raw, 0);
    assert_eq!(stats.frame_bytes_wire, 0);
    assert!(stats.requests > 0, "the rest of the stats still flow");

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// The pread fallback path (`ACCELVIZ_STORE_NO_MMAP=1`, as CI forces it)
/// serves byte-identical frames; this guards the non-mmap half without
/// relying on the environment.
#[test]
fn pread_fallback_serves_identical_frames() {
    let frames = build_frames();
    let path = run_path("pread");
    write_run_file(&path, &frames, 4_096).unwrap();

    // Env-var forcing is process-global, so instead of setting it here
    // (racing other tests) this compares a mapped and an unmapped open
    // only when the environment already picked one; the store's own unit
    // tests cover forcing. What must hold either way: open succeeds and
    // frames match memory.
    let run = Arc::new(ResidentRun::open(&path, u64::MAX).unwrap());
    let dims = [16, 16, 16];
    for (i, data) in frames.iter().enumerate() {
        let fetch = run.fetch(i).unwrap();
        let got = HybridFrame::from_partition(&fetch.data, i, f64::INFINITY, dims);
        let want = HybridFrame::from_partition(data, i, f64::INFINITY, dims);
        assert_eq!(
            got,
            want,
            "frame {i} via {}",
            if run.is_mapped() { "mmap" } else { "pread" }
        );
    }
    let _ = std::fs::remove_file(&path);
}
