//! Fast, end-to-end "shape of the result" checks: the qualitative
//! direction of each figure's comparison, at scales small enough for
//! debug builds. (EXPERIMENTS.md records the full-scale magnitudes.)

use accelviz::core::hybrid::HybridFrame;
use accelviz::core::scene::{render_hybrid_frame, render_line_set, LineRepresentation, RenderMode};
use accelviz::core::transfer::TransferFunctionPair;
use accelviz::emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz::emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz::emsim::sample::{FieldKind, FieldSampler};
use accelviz::fieldlines::integrate::TraceParams;
use accelviz::fieldlines::line::FieldLine;
use accelviz::fieldlines::seeding::{seed_lines, SeedingParams};
use accelviz::fieldlines::style::LineStyle;
use accelviz::math::Vec3;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::points::PointStyle;
use accelviz::render::volume::VolumeStyle;

fn small_frame(volume_dims: [usize; 3], budget: usize) -> HybridFrame {
    use accelviz::beam::distribution::Distribution;
    let ps = Distribution::default_beam().sample(3_000, 7);
    let data = partition(&ps, PlotType::XYZ, BuildParams::default());
    let t = threshold_for_budget(&data, budget);
    HybridFrame::from_partition(&data, 0, t, volume_dims)
}

/// Figure 1's direction: at matched image size, the hybrid rendering
/// costs fewer field samples than the brute-force high-resolution volume
/// rendering.
#[test]
fn fig1_shape_hybrid_samples_fewer() {
    let hires = small_frame([64, 64, 64], 0);
    let hybrid = small_frame([16, 16, 16], 600);
    let cam = Camera::orbit(
        hybrid.bounds.center(),
        hybrid.bounds.longest_edge() * 2.2,
        0.5,
        0.3,
        1.0,
    );
    let tfs = TransferFunctionPair::linked_at(0.04, 0.02);
    let ps = PointStyle::default();
    let mut fb = Framebuffer::new(96, 96);
    let vol = render_hybrid_frame(
        &mut fb,
        &cam,
        &hires,
        &tfs,
        RenderMode::VolumeOnly,
        &VolumeStyle {
            steps: 64,
            ..Default::default()
        },
        &ps,
    );
    let mut fb = Framebuffer::new(96, 96);
    let hyb = render_hybrid_frame(
        &mut fb,
        &cam,
        &hybrid,
        &tfs,
        RenderMode::Hybrid,
        &VolumeStyle {
            steps: 16,
            ..Default::default()
        },
        &ps,
    );
    assert!(
        vol.volume_samples > 2 * hyb.volume_samples,
        "hybrid must sample far less: {} vs {}",
        vol.volume_samples,
        hyb.volume_samples
    );
    assert!(hyb.points_drawn > 0, "and still show the halo as points");
    // And the hybrid frame is much smaller than the hi-res texture.
    assert!(hybrid.total_bytes() * 4 < hires.volume_bytes());
}

/// Figure 6's direction: streamtubes cost an order of magnitude more
/// triangles than self-orienting surfaces for the same lines.
#[test]
fn fig6_shape_tubes_cost_more() {
    let lines: Vec<FieldLine> = (0..4)
        .map(|i| {
            let mut l = FieldLine::new();
            for j in 0..10 {
                l.push(
                    Vec3::new(j as f64 * 0.1 - 0.5, i as f64 * 0.1 - 0.15, 0.0),
                    Vec3::UNIT_X,
                    0.5,
                );
            }
            l
        })
        .collect();
    let cam = Camera::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, 1.0);
    let style = LineStyle::electric(1.0);
    let mut fb = Framebuffer::new(96, 96);
    let sos = render_line_set(
        &mut fb,
        &cam,
        &lines,
        LineRepresentation::SelfOrientingSurfaces,
        &style,
        0.02,
    );
    let mut fb = Framebuffer::new(96, 96);
    let tubes = render_line_set(
        &mut fb,
        &cam,
        &lines,
        LineRepresentation::Streamtubes,
        &style,
        0.02,
    );
    assert!(tubes.triangles >= 6 * sos.triangles);
}

/// Figures 7/8's direction on a quick driven cavity: the strongest-field
/// lines load first, and the RF energy actually reaches the structure.
#[test]
fn fig7_fig8_shape_strong_regions_first() {
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 8));
    sim.run(300);
    assert!(accelviz::emsim::energy::total_energy(&sim) > 0.0);
    let field = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = seed_lines(
        &field,
        &SeedingParams {
            n_lines: 60,
            trace: TraceParams {
                step: 0.06,
                max_steps: 120,
                min_magnitude: 1e-6 * field.max_magnitude(),
                bidirectional: true,
            },
            seed: 3,
            min_magnitude_frac: 1e-3,
        },
    );
    assert!(
        lines.len() >= 20,
        "seeding must produce lines: {}",
        lines.len()
    );
    let k = lines.len() / 4;
    let first: f64 = lines[..k]
        .iter()
        .map(|l| l.line.mean_magnitude())
        .sum::<f64>()
        / k as f64;
    let last: f64 = lines[lines.len() - k..]
        .iter()
        .map(|l| l.line.mean_magnitude())
        .sum::<f64>()
        / k as f64;
    assert!(
        first > last,
        "first quartile of seeded lines must sit in stronger field: {first:.3e} vs {last:.3e}"
    );
}
