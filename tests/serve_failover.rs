//! Acceptance for the self-healing shard layer: replicated ownership
//! keeps a session bit-identical through shard kills (zero degraded
//! frames at replication 2), circuit breakers turn a dead shard's cost
//! from a retry budget into microseconds at replication 1, breaker and
//! failover transitions land on the router's counters, and the
//! background prober both discovers death without client traffic and
//! reinstates a shard that comes back on its old address with no
//! operator in the loop.
//!
//! Runs against whichever serve backend `ACCELVIZ_SERVE_BACKEND`
//! selects, like the other serve suites — CI matrixes it over both.

use accelviz::beam::distribution::Distribution;
use accelviz::core::shard::ShardSpec;
use accelviz::core::viewer::FrameSource;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::protocol::ERR_INTERNAL;
use accelviz::serve::router::{
    CTR_ROUTER_BREAKER_CLOSED, CTR_ROUTER_BREAKER_FAST_FAILS, CTR_ROUTER_BREAKER_OPEN,
    CTR_ROUTER_PROBE_FAIL, CTR_ROUTER_PROBE_OK, CTR_ROUTER_REPLICA_FAILOVERS,
    CTR_ROUTER_UPSTREAM_ERRORS,
};
use accelviz::serve::{
    BreakerConfig, BreakerState, Client, ClientConfig, FrameRouter, FrameServer, HealthConfig,
    RemoteFrames, RetryPolicy, RouterConfig, ServeError, ServerConfig, ShardMap,
    ShardedFrameService,
};
use std::time::{Duration, Instant};

/// The 10-frame session the chaos scenarios walk (same convention as
/// the other serve suites: frame `i` is an 800-particle beam seeded
/// `i + 1`).
const FRAMES: usize = 10;

fn stores(n: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(800, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

/// Reference frames from a direct server of the unsliced data — the
/// bit-identity bar every chaos session is held to.
fn reference_frames(data: &[PartitionedData]) -> Vec<accelviz::core::hybrid::HybridFrame> {
    let direct = FrameServer::spawn_loopback(data.to_vec(), ServerConfig::default()).unwrap();
    let mut client = Client::connect_with(direct.addr(), ClientConfig::no_retry()).unwrap();
    let frames = (0..data.len() as u32)
        .map(|f| client.fetch(f, f64::INFINITY).unwrap().0)
        .collect();
    drop(client);
    direct.shutdown();
    frames
}

/// The chaos-test router tuning: a 1-byte cache so every request pays
/// the upstream hop (nothing hides behind the router cache), fast
/// seeded upstream retries so a dead-shard attempt costs milliseconds,
/// a hair-trigger breaker with a cooldown longer than any test phase
/// (no half-open trial fires mid-scenario unless a test wants one), and
/// the prober off for deterministic counters — the prober gets its own
/// tests.
fn chaos_router(seed: u64) -> RouterConfig {
    RouterConfig {
        cache_bytes: 1,
        upstream_retry: Some(RetryPolicy::fast(seed)),
        breaker: BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::from_secs(120),
        },
        health: HealthConfig {
            probe_interval: Duration::ZERO,
            ..HealthConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// A frame whose replica set starts (or does not start) at `shard`.
fn frame_with_primary(spec: &ShardSpec, shard: usize) -> u32 {
    (0..FRAMES as u32)
        .find(|&f| spec.owner_of(f) == shard)
        .expect("every shard should primary-own a frame in a 10-frame catalog")
}

/// The headline acceptance: at replication 2, killing a shard mid-
/// session costs **zero** degraded frames — every fetch falls through
/// to the surviving replica and arrives bit-identical to a direct
/// server of the unsliced data, counter-asserted.
#[test]
fn replicated_kill_mid_session_yields_zero_degraded_frames() {
    let data = stores(FRAMES);
    let reference = reference_frames(&data);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        3,
        2,
        ServerConfig::default(),
        chaos_router(101),
    )
    .unwrap();
    let spec = ShardSpec::new(3);
    let victim = spec.owner_of(0);

    let client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, 2);

    // A few healthy loads, then the kill, then the whole catalog.
    for (f, want) in reference.iter().enumerate().take(3) {
        let (got, load) = remote.load(f).unwrap();
        assert!(!load.degraded);
        assert_eq!(&*got, want);
    }
    service.kill_shard(victim);
    for (f, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(f).unwrap();
        assert!(
            !load.degraded,
            "frame {f} degraded despite a surviving replica"
        );
        assert_eq!(&*got, want, "frame {f} differs after failover");
    }
    assert_eq!(remote.degraded_loads, 0);

    let rm = service.router().metrics();
    assert!(
        rm.counter(CTR_ROUTER_REPLICA_FAILOVERS) >= 1,
        "the victim's primaries must have been served by their fallback"
    );
    assert!(
        rm.counter(CTR_ROUTER_UPSTREAM_ERRORS) >= 1,
        "the first post-kill fetch pays the discovery cost"
    );
    assert!(
        rm.counter(CTR_ROUTER_BREAKER_OPEN) >= 1,
        "the dead shard's breaker must trip"
    );
    assert_eq!(service.router().breaker_state(victim), BreakerState::Open);
    service.shutdown();
}

/// The flapping-shard chaos session: kill → reinstate → kill across the
/// 10-frame catalog, full pass after each transition. Replication 2
/// means no pass ever hard-fails or degrades, the final session is
/// bit-identical to a fault-free run, and every breaker transition is
/// visible on the counters.
#[test]
fn flapping_shard_session_stays_bit_identical_with_replication() {
    let data = stores(FRAMES);
    let reference = reference_frames(&data);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        3,
        2,
        ServerConfig::default(),
        chaos_router(202),
    )
    .unwrap();
    let spec = ShardSpec::new(3);
    let victim = spec.owner_of(0);
    frame_with_primary(&spec, victim); // the kill must actually bite

    let client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, 2);
    let full_pass = |remote: &mut RemoteFrames, phase: &str| {
        for (f, want) in reference.iter().enumerate() {
            let (got, load) = remote.load(f).unwrap();
            assert!(!load.degraded, "frame {f} degraded during phase {phase}");
            assert_eq!(&*got, want, "frame {f} differs in phase {phase}");
        }
    };

    full_pass(&mut remote, "healthy");
    service.kill_shard(victim);
    full_pass(&mut remote, "first kill");
    assert_eq!(service.router().breaker_state(victim), BreakerState::Open);

    service.reinstate_shard(victim).unwrap();
    assert_eq!(
        service.router().breaker_state(victim),
        BreakerState::Closed,
        "reinstatement must reset the breaker"
    );
    full_pass(&mut remote, "reinstated");

    service.kill_shard(victim);
    full_pass(&mut remote, "second kill");

    assert_eq!(remote.degraded_loads, 0, "no phase may degrade a frame");
    let rm = service.router().metrics();
    assert!(
        rm.counter(CTR_ROUTER_BREAKER_OPEN) >= 2,
        "one trip per kill"
    );
    assert!(
        rm.counter(CTR_ROUTER_BREAKER_CLOSED) >= 1,
        "the reinstatement reset must be counted"
    );
    assert!(
        rm.counter(CTR_ROUTER_BREAKER_FAST_FAILS) >= 1,
        "post-trip fetches must skip the dead primary in microseconds"
    );
    assert!(rm.counter(CTR_ROUTER_REPLICA_FAILOVERS) >= 2);
    service.shutdown();
}

/// At replication 1 there is no replica to fall through, so the breaker
/// changes the *speed* of degradation, not the outcome: once tripped,
/// requests for the dead shard's frames fast-fail to the in-band
/// `ERR_INTERNAL` degraded path in well under 10 ms instead of burning
/// the upstream retry budget.
#[test]
fn replication_one_fast_fails_to_the_degraded_path_once_tripped() {
    let data = stores(FRAMES);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        2,
        1,
        ServerConfig::default(),
        chaos_router(303),
    )
    .unwrap();
    let spec = ShardSpec::new(2);
    let victim = spec.owner_of(0);
    let doomed = frame_with_primary(&spec, victim);
    let safe = frame_with_primary(&spec, 1 - victim);

    let mut client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    service.kill_shard(victim);

    // The first fetch pays the discovery cost (the fast retry policy)
    // and trips the hair-trigger breaker.
    match client.fetch(doomed, f64::INFINITY) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ERR_INTERNAL),
        other => panic!("expected the in-band degraded path, got {other:?}"),
    }
    assert_eq!(service.router().breaker_state(victim), BreakerState::Open);

    // Every subsequent fetch fast-fails: same in-band error, but in
    // microseconds — bounded here at 10 ms with a wide margin.
    for attempt in 0..5 {
        let t0 = Instant::now();
        match client.fetch(doomed, f64::INFINITY) {
            Err(ServeError::Remote { code, .. }) => assert_eq!(code, ERR_INTERNAL),
            other => panic!("expected the in-band degraded path, got {other:?}"),
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(10),
            "fast-fail attempt {attempt} took {elapsed:?}; the breaker is not breaking"
        );
    }
    assert!(
        service
            .router()
            .metrics()
            .counter(CTR_ROUTER_BREAKER_FAST_FAILS)
            >= 5
    );

    // The surviving shard is untouched by its neighbor's open breaker.
    let (frame, _) = client.fetch(safe, f64::INFINITY).unwrap();
    assert_eq!(frame.step, safe as usize);
    service.shutdown();
}

/// The background prober discovers a dead shard with **no client
/// traffic at all**: its failed `Stats` pings trip the breaker, so the
/// first real request after the death fast-fails instead of paying the
/// discovery cost itself.
#[test]
fn prober_trips_the_breaker_without_client_traffic() {
    let data = stores(4);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        2,
        1,
        ServerConfig::default(),
        RouterConfig {
            cache_bytes: 1,
            upstream_retry: Some(RetryPolicy::fast(404)),
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_cooldown: Duration::from_secs(120),
            },
            health: HealthConfig {
                probe_interval: Duration::from_millis(20),
                probe_timeout: Duration::from_millis(500),
                probe_seed: 404,
                ..HealthConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let victim = ShardSpec::new(2).owner_of(0);
    service.kill_shard(victim);

    // No requests issued: the prober alone must observe the death.
    let rm = service.router().metrics();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.router().breaker_state(victim) != BreakerState::Open && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        service.router().breaker_state(victim),
        BreakerState::Open,
        "probe failures alone must trip the breaker"
    );
    assert!(rm.counter(CTR_ROUTER_PROBE_FAIL) >= 2);
    assert!(
        rm.counter(CTR_ROUTER_PROBE_OK) >= 1,
        "the live shard's pings keep answering"
    );
    service.shutdown();
}

/// The prober also closes the loop: a shard that comes back on its
/// *old* address (no `set_shard_addr`, no operator) is reinstated by a
/// successful ping, and requests flow again.
#[test]
fn prober_reinstates_a_shard_that_returns_on_its_old_address() {
    let data = stores(4);
    let spec = ShardSpec::new(2);
    let map = ShardMap::sliced(&spec, 4);
    let mut slices: Vec<Vec<PartitionedData>> = vec![Vec::new(), Vec::new()];
    for (g, d) in data.iter().enumerate() {
        slices[spec.owner_of(g as u32)].push(d.clone());
    }
    let shard0 = FrameServer::spawn_loopback(slices[0].clone(), ServerConfig::default()).unwrap();
    let shard1 = FrameServer::spawn_loopback(slices[1].clone(), ServerConfig::default()).unwrap();
    let victim_addr = shard1.addr();
    let router = FrameRouter::spawn(
        "127.0.0.1:0",
        vec![shard0.addr(), shard1.addr()],
        map,
        RouterConfig {
            cache_bytes: 1,
            upstream_retry: Some(RetryPolicy::fast(505)),
            breaker: BreakerConfig {
                failure_threshold: 1,
                // Short cooldown: recovery may also arrive via a
                // half-open trial; either road must lead back to Closed.
                open_cooldown: Duration::from_millis(200),
            },
            health: HealthConfig {
                probe_interval: Duration::from_millis(20),
                probe_timeout: Duration::from_millis(500),
                probe_seed: 505,
                ..HealthConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let victim_frame = (0..4u32)
        .find(|&f| spec.owner_of(f) == 1)
        .expect("shard 1 should primary-own a frame in a 4-frame catalog");

    shard1.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.breaker_state(1) != BreakerState::Open && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(router.breaker_state(1), BreakerState::Open);

    // The shard returns on the very same port — rebinding can lose a
    // race against the OS releasing it, so retry briefly.
    let mut revived = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    while revived.is_none() && Instant::now() < deadline {
        match FrameServer::spawn(
            &victim_addr.to_string(),
            slices[1].clone(),
            ServerConfig::default(),
        ) {
            Ok(server) => revived = Some(server),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let revived = revived.expect("the old port must become bindable again");

    // No operator action: probing (or a half-open trial fed by it)
    // must reinstate the shard on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.breaker_state(1) != BreakerState::Closed && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        router.breaker_state(1),
        BreakerState::Closed,
        "a returning shard must be reinstated without set_shard_addr"
    );
    assert!(router.metrics().counter(CTR_ROUTER_PROBE_OK) >= 1);

    let mut client = Client::connect_with(router.addr(), ClientConfig::no_retry()).unwrap();
    let (frame, _) = client.fetch(victim_frame, f64::INFINITY).unwrap();
    assert_eq!(frame.step, victim_frame as usize);

    drop(client);
    router.shutdown();
    shard0.shutdown();
    revived.shutdown();
}

/// Hedged reads stay correct: with an aggressive hedge delay every
/// fetch may race two replicas, and the session is still bit-identical
/// with no duplicate replies — the first genuine answer wins, the loser
/// is discarded by the channel, and the cache sees one result per key.
#[test]
fn hedged_reads_stay_bit_identical_and_are_counted() {
    use accelviz::serve::HedgeConfig;

    let data = stores(FRAMES);
    let reference = reference_frames(&data);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        3,
        2,
        ServerConfig::default(),
        RouterConfig {
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                // Zero floor: with an empty histogram the delay starts at
                // max_delay, then collapses toward the observed latency —
                // so later fetches hedge aggressively.
                min_delay: Duration::ZERO,
                max_delay: Duration::from_millis(5),
            }),
            ..chaos_router(606)
        },
    )
    .unwrap();
    let spec = ShardSpec::new(3);
    let victim = spec.owner_of(0);

    let client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, 2);
    for round in 0..3 {
        for (f, want) in reference.iter().enumerate() {
            let (got, load) = remote.load(f).unwrap();
            assert!(!load.degraded, "round {round} frame {f}");
            assert_eq!(&*got, want, "round {round} frame {f} differs");
        }
    }
    // And hedging composes with failover: kill a shard, the session
    // still never degrades.
    service.kill_shard(victim);
    for (f, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(f).unwrap();
        assert!(!load.degraded, "post-kill frame {f} degraded");
        assert_eq!(&*got, want);
    }
    assert_eq!(remote.degraded_loads, 0);
    service.shutdown();
}

/// `spawn_loopback_replicated` provisioning is sound: at replication 2
/// each shard's slice is exactly the frames whose replica set includes
/// it, in ascending global order — so every replica serves bytes
/// identical to the primary's.
#[test]
fn replicated_slices_serve_identical_bytes_from_every_replica() {
    let data = stores(6);
    let reference = reference_frames(&data);
    let spec = ShardSpec::new(3);
    let map = ShardMap::sliced_replicated(&spec, 6, 2);
    let mut service = ShardedFrameService::spawn_loopback_replicated(
        data,
        3,
        2,
        ServerConfig::default(),
        chaos_router(707),
    )
    .unwrap();

    // Ask each live shard directly for each of its local frames and
    // check them against the global reference.
    for g in 0..6u32 {
        for &(shard, local) in map.replicas(g).unwrap() {
            let mut direct = Client::connect_with(
                service.shard(shard as usize).addr(),
                ClientConfig::no_retry(),
            )
            .unwrap();
            let (mut frame, _) = direct.fetch(local, f64::INFINITY).unwrap();
            // A sliced shard labels steps locally; undo the relabeling
            // the router normally performs.
            frame.step = g as usize;
            assert_eq!(
                frame, reference[g as usize],
                "shard {shard} local {local} differs from global frame {g}"
            );
        }
    }

    // Zero replication is rejected up front.
    let err = ShardedFrameService::spawn_loopback_replicated(
        stores(2),
        2,
        0,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .map(|_| ())
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // kill_shard / reinstate_shard round-trip bookkeeping.
    assert!(service.shard_alive(0));
    service.kill_shard(0);
    assert!(!service.shard_alive(0));
    service.kill_shard(0); // idempotent
    service.reinstate_shard(0).unwrap();
    assert!(service.shard_alive(0));
    service.reinstate_shard(0).unwrap(); // idempotent
    service.shutdown();
}
