//! Property-based tests (proptest) of the core invariants the paper's
//! pipeline rests on, across randomized inputs.

use accelviz::beam::particle::Particle;
use accelviz::core::transfer::TransferFunctionPair;
use accelviz::math::{Aabb, Rgba, Vec3};
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::{extract, threshold_for_budget};
use accelviz::octree::plots::PlotType;
use proptest::prelude::*;

fn arb_particle() -> impl Strategy<Value = Particle> {
    (
        -1.0e-2..1.0e-2f64,
        -1.0e-3..1.0e-3f64,
        -1.0e-2..1.0e-2f64,
        -1.0e-3..1.0e-3f64,
        -5.0e-2..5.0e-2f64,
        -1.0e-3..1.0e-3f64,
    )
        .prop_map(|(x, px, y, py, z, pz)| Particle::from_array([x, px, y, py, z, pz]))
}

fn arb_particles(max: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(arb_particle(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioning conserves the particle multiset and its store
    /// invariants for arbitrary clouds.
    #[test]
    fn partition_conserves_particles(
        particles in arb_particles(600),
        max_depth in 1u32..5,
        leaf_capacity in 1usize..64,
    ) {
        let data = partition(
            &particles,
            PlotType::XYZ,
            BuildParams { max_depth, leaf_capacity, gradient_refinement: None },
        );
        prop_assert!(data.validate().is_ok());
        prop_assert_eq!(data.particles().len(), particles.len());
        // Multiset equality via sorted bit patterns.
        let key = |p: &Particle| p.to_array().map(f64::to_bits);
        let mut a: Vec<_> = particles.iter().map(key).collect();
        let mut b: Vec<_> = data.particles().iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Extraction at any threshold equals the brute-force filter and
    /// respects the prefix property.
    #[test]
    fn extraction_is_a_threshold_filter(
        particles in arb_particles(400),
        threshold_exp in -3.0..12.0f64,
    ) {
        let data = partition(&particles, PlotType::XYZ, BuildParams::default());
        let threshold = 10f64.powf(threshold_exp);
        let ex = extract(&data, threshold);
        let expected: u64 = data
            .sorted_leaves()
            .iter()
            .map(|&li| &data.tree().nodes[li as usize])
            .filter(|n| n.density < threshold)
            .map(|n| n.len)
            .sum();
        prop_assert_eq!(ex.particles.len() as u64, expected);
        // Prefix property: a smaller threshold keeps a prefix of this.
        let smaller = extract(&data, threshold / 10.0);
        prop_assert!(smaller.particles.len() <= ex.particles.len());
        prop_assert_eq!(
            &ex.particles[..smaller.particles.len()],
            smaller.particles
        );
    }

    /// The budgeted threshold never exceeds its budget.
    #[test]
    fn budget_is_respected(
        particles in arb_particles(500),
        budget in 0usize..600,
    ) {
        let data = partition(&particles, PlotType::XYZ, BuildParams::default());
        let t = threshold_for_budget(&data, budget);
        prop_assert!(extract(&data, t).particles.len() <= budget);
    }

    /// The linked transfer-function pair keeps point + volume coverage at
    /// exactly 1 for any boundary and any density.
    #[test]
    fn linked_tfs_always_sum_to_one(
        threshold in 0.0..1.0f64,
        ramp in 0.0..0.5f64,
        density in 0.0..1.0f64,
    ) {
        let pair = TransferFunctionPair::linked_at(threshold, ramp);
        prop_assert!((pair.coverage(density) - 1.0).abs() < 1e-12);
    }

    /// Front-to-back premultiplied compositing matches back-to-front
    /// `over` chaining for arbitrary sample stacks.
    #[test]
    fn compositing_orders_agree(
        samples in prop::collection::vec(
            (0.0..1.0f32, 0.0..1.0f32, 0.0..1.0f32, 0.0..1.0f32),
            0..12,
        )
    ) {
        let samples: Vec<Rgba> = samples
            .into_iter()
            .map(|(r, g, b, a)| Rgba::new(r, g, b, a))
            .collect();
        let mut acc = Rgba::TRANSPARENT;
        for s in &samples {
            acc = Rgba::front_to_back(acc, *s);
        }
        let ftb = acc.unpremultiply();
        let mut btf = Rgba::TRANSPARENT;
        for s in samples.iter().rev() {
            btf = s.over(btf);
        }
        prop_assert!(ftb.max_channel_diff(btf) < 1e-4, "{ftb:?} vs {btf:?}");
    }

    /// Octant decomposition tiles any box: every point belongs to exactly
    /// the octant reported by `octant_index`.
    #[test]
    fn octants_tile_boxes(
        cx in -10.0..10.0f64,
        cy in -10.0..10.0f64,
        cz in -10.0..10.0f64,
        half in 0.1..10.0f64,
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
        pz in 0.0..1.0f64,
    ) {
        let b = Aabb::cube(Vec3::new(cx, cy, cz), half);
        let p = b.min + Vec3::new(
            px * b.size().x,
            py * b.size().y,
            pz * b.size().z,
        );
        let idx = b.octant_index(p);
        prop_assert!(b.octant(idx).contains(p));
        // Volumes of the octants sum to the parent volume.
        let vol: f64 = (0..8).map(|i| b.octant(i).volume()).sum();
        prop_assert!((vol - b.volume()).abs() < 1e-9 * b.volume());
    }

    /// Snapshot IO roundtrips arbitrary particle data bit-exactly.
    #[test]
    fn snapshot_io_roundtrip(particles in arb_particles(200), step in 0u64..1000) {
        let bytes = accelviz::beam::io::snapshot_to_vec(step, &particles);
        let (s, back) = accelviz::beam::io::read_snapshot(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(s, step);
        prop_assert_eq!(back, particles);
    }

    /// Seeding on arbitrary random fields: never panics, lines stay in
    /// bounds, the incremental order is consecutive, and the run is
    /// deterministic.
    #[test]
    fn seeding_is_robust_on_random_fields(
        vectors in prop::collection::vec(
            (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64),
            64..=64,
        ),
        n_lines in 1usize..30,
        seed in 0u64..1000,
    ) {
        use accelviz::emsim::sample::FieldSampler;
        use accelviz::fieldlines::integrate::TraceParams;
        use accelviz::fieldlines::seeding::{seed_lines, SeedingParams};
        let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let vecs: Vec<Vec3> = vectors.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)).collect();
        let field = FieldSampler::from_vectors([4, 4, 4], bounds, vecs);
        let params = SeedingParams {
            n_lines,
            trace: TraceParams { step: 0.05, max_steps: 60, ..Default::default() },
            seed,
            min_magnitude_frac: 1e-6,
        };
        let lines = seed_lines(&field, &params);
        prop_assert!(lines.len() <= n_lines);
        for (i, sl) in lines.iter().enumerate() {
            prop_assert_eq!(sl.order, i);
            for p in &sl.line.points {
                prop_assert!(bounds.contains(*p));
                prop_assert!(p.is_finite());
            }
        }
        let again = seed_lines(&field, &params);
        prop_assert_eq!(lines.len(), again.len());
        for (a, b) in lines.iter().zip(&again) {
            prop_assert_eq!(&a.line.points, &b.line.points);
        }
    }

    /// Compact line serialization roundtrips within f32 precision.
    #[test]
    fn compact_lines_roundtrip(
        points in prop::collection::vec(
            (-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64, 0.0..5.0f64),
            2..40,
        )
    ) {
        use accelviz::fieldlines::line::FieldLine;
        let mut line = FieldLine::new();
        for (x, y, z, m) in points {
            line.push(Vec3::new(x, y, z), Vec3::UNIT_X, m);
        }
        let lines = vec![line];
        let mut buf = Vec::new();
        accelviz::fieldlines::compact::serialize_lines(&mut buf, &lines).unwrap();
        let back = accelviz::fieldlines::compact::deserialize_lines(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), 1);
        for (a, b) in lines[0].points.iter().zip(&back[0].points) {
            prop_assert!(a.distance(*b) < 1e-4);
        }
    }
}
