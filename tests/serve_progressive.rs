//! End-to-end progressive (LOD) streaming: a progressive fetch must
//! refine to a frame bit-identical to a full fetch — through a direct
//! server, through the shard router, and under a seeded chaos plan with
//! reconnect-and-replay mid-stream — while the first chunk alone is a
//! renderable partial frame at a fraction of the full wire bytes. v1
//! sessions must reject the request in-band and stay byte-identical to
//! their pre-LOD behavior.
//!
//! NOTE for CI: no test in this file may legitimately print
//! "panicked at" — the chaos job greps for that string.

use accelviz::beam::distribution::Distribution;
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::core::viewer::FrameSource;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::client::{FaultyConnector, TcpConnector};
use accelviz::serve::fault::{FaultDirection, FaultEvent, FaultKind, FaultPlan};
use accelviz::serve::lod;
use accelviz::serve::protocol::{write_response_v, Response, ERR_BAD_REQUEST};
use accelviz::serve::stats::{CTR_LOD_CHUNKS, CTR_LOD_REQUESTS};
use accelviz::serve::wire::{encode_frame_v2, V1, V2};
use accelviz::serve::{
    Client, ClientConfig, FrameServer, RemoteFrames, RetryPolicy, RouterConfig, ServeError,
    ServerConfig, ShardedFrameService,
};
use std::sync::Arc;

fn stores(n: usize, particles: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(particles, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

fn chaos_seed() -> u64 {
    std::env::var("ACCELVIZ_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_807)
}

/// Direct server: every (frame, threshold, budget) cell of the matrix
/// refines to the bit-identical full fetch, the first chunk undercuts
/// the full v2 payload, and both request kinds share one extraction.
#[test]
fn progressive_refines_bit_identical_to_full_fetch_direct() {
    let config = ServerConfig::default();
    let server = FrameServer::spawn_loopback(stores(2, 2_000), config).unwrap();
    let local = stores(2, 2_000);
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.negotiated_version(), V2);

    for (frame_idx, data) in local.iter().enumerate() {
        for budget in [300usize, 1_200] {
            let threshold = threshold_for_budget(data, budget);
            let (full, full_metrics) = client.fetch(frame_idx as u32, threshold).unwrap();
            for chunk_bytes in [lod::MIN_CHUNK_BYTES, 8 * 1024, 0] {
                let (refined, metrics) = client
                    .fetch_progressive(frame_idx as u32, threshold, chunk_bytes)
                    .unwrap();
                assert_eq!(
                    refined, full,
                    "frame {frame_idx} budget {budget} chunk {chunk_bytes}"
                );
                assert!(metrics.wire_bytes > 0);
                // The reference frame extracted locally matches too —
                // the stream is the *same data*, not merely
                // self-consistent.
                let reference =
                    HybridFrame::from_partition(data, frame_idx, threshold, config.volume_dims);
                assert_eq!(refined, reference);
                let _ = full_metrics;
            }
        }
    }

    // The coarse head alone is a fraction of the full v2 payload: the
    // time-to-first-pixel claim. (The <25%-at-default-budget acceptance
    // number is measured by the lod_stream bench on the fig-1 workload,
    // which is much larger than one chunk; this frame is not, so pin a
    // budget well under the frame size.)
    let threshold = threshold_for_budget(&local[0], 1_200);
    let reference = HybridFrame::from_partition(&local[0], 0, threshold, config.volume_dims);
    let records = lod::plan_frame_chunks(&reference, 4 * 1024);
    let (full_v2, _) = encode_frame_v2(&reference);
    assert!(
        records[0].len() * 4 < full_v2.len(),
        "first chunk {} B vs full {} B",
        records[0].len(),
        full_v2.len()
    );

    // Observability: progressive traffic is counted, and the shared
    // extraction cache served both request kinds (no double builds).
    let reg = server.metrics();
    assert!(reg.counter(CTR_LOD_REQUESTS) >= 12);
    assert!(reg.counter(CTR_LOD_CHUNKS) >= 2 * reg.counter(CTR_LOD_REQUESTS));
    let stats = client.stats().unwrap();
    assert!(
        stats.cache_hits >= 12,
        "progressive refetches must hit the same cache entries: {stats:?}"
    );
    server.shutdown();
}

/// Sharded sessions: the router proxies a progressive request by
/// fetching the full frame upstream and re-chunking locally with the
/// same planner the shards run — the refined frame is bit-identical to
/// both a full fetch through the router and a direct extraction.
#[test]
fn sharded_progressive_matches_full_fetch_and_direct_extraction() {
    let frames = 4usize;
    let data = stores(frames, 1_200);
    let dims = ServerConfig::default().volume_dims;
    let service = ShardedFrameService::spawn_loopback(
        stores(frames, 1_200),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();

    let mut client = Client::connect(service.addr()).unwrap();
    assert_eq!(client.negotiated_version(), V2);
    for (g, frame_data) in data.iter().enumerate() {
        let (full, _) = client.fetch(g as u32, f64::INFINITY).unwrap();
        let (refined, _) = client
            .fetch_progressive(g as u32, f64::INFINITY, 2_048)
            .unwrap();
        assert_eq!(refined, full, "frame {g} through the router");
        let reference = HybridFrame::from_partition(frame_data, g, f64::INFINITY, dims);
        assert_eq!(refined, reference, "frame {g} vs direct extraction");
    }
    drop(client);
    service.shutdown();
}

/// Chaos: a seeded fault plan (delay, disconnect, truncation guaranteed
/// in the first half) against a progressive session must still refine
/// every frame bit-identically — mid-stream failures reconnect, replay
/// the request, and skip already-applied records at the assembler's
/// high-water mark.
#[test]
fn chaos_progressive_session_refines_bit_identically() {
    let frames = 5usize;
    let seed = chaos_seed();
    let server = FrameServer::spawn_loopback(stores(frames, 800), ServerConfig::default()).unwrap();

    // Fault-free reference pass, measuring the progressive reply volume
    // that calibrates the chaos plan's byte span.
    let mut reference = Vec::new();
    let mut reply_bytes = 0u64;
    let mut clean = Client::connect_with(server.addr(), ClientConfig::no_retry()).unwrap();
    for frame in 0..frames as u32 {
        let (f, m) = clean
            .fetch_progressive(frame, f64::INFINITY, 2_048)
            .unwrap();
        reply_bytes += m.wire_bytes;
        reference.push(f);
    }
    drop(clean);

    let plan = FaultPlan::chaos(seed, 8, reply_bytes);
    let script = plan.script();
    let config = ClientConfig {
        retry: Some(RetryPolicy::fast(seed)),
        ..ClientConfig::default()
    };
    let connector = FaultyConnector::new(
        TcpConnector::new(server.addr(), &config).unwrap(),
        Arc::clone(&script),
    );
    let client = Client::connect_via(Box::new(connector), config).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, frames).progressive(2_048);

    for (i, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(i).unwrap();
        assert!(
            !load.degraded && !load.partial,
            "frame {i} must be fully refined, not a fallback"
        );
        assert_eq!(&*got, want, "frame {i} differs from the fault-free run");
    }
    assert!(
        script.stats().total() > 0,
        "the plan must actually have fired"
    );
    server.shutdown();
}

/// An unrecoverable mid-stream failure past the coarse head degrades to
/// a *partial* rendition of the requested frame: the session advances
/// to it (unlike a stale fallback) and the resident points are a prefix
/// of the real frame.
#[test]
fn midstream_failure_degrades_to_a_partial_of_the_requested_frame() {
    let config = ServerConfig::default();
    let server = FrameServer::spawn_loopback(stores(1, 2_000), config).unwrap();
    let reference = {
        let data = stores(1, 2_000);
        HybridFrame::from_partition(&data[0], 0, f64::INFINITY, config.volume_dims)
    };
    let records = lod::plan_frame_chunks(&reference, lod::MIN_CHUNK_BYTES);
    assert!(records.len() > 3, "the plan must have refinement records");

    // Truncate the read side mid-way through the second chunk: after
    // the hello ack and the first chunk envelope, but before the stream
    // completes. Envelope overhead is 16 B header + 8 B checksum.
    let hello_bytes = {
        let mut buf = Vec::new();
        write_response_v(
            &mut buf,
            V2,
            &Response::HelloAck {
                version: V2,
                frame_count: 1,
            },
        )
        .unwrap()
    };
    let cut = hello_bytes + (records[0].len() as u64 + 24) + 12;
    let plan = FaultPlan::new(vec![FaultEvent {
        direction: FaultDirection::Read,
        at_byte: cut,
        kind: FaultKind::Truncate,
    }]);
    let config_client = ClientConfig::no_retry();
    let connector = FaultyConnector::new(
        TcpConnector::new(server.addr(), &config_client).unwrap(),
        plan.script(),
    );
    let client = Client::connect_via(Box::new(connector), config_client).unwrap();
    let remote = RemoteFrames::new(client, f64::INFINITY, 4).progressive(lod::MIN_CHUNK_BYTES);

    let mut session = ViewerSession::open_with(Box::new(remote));
    // Frame 0 loaded eagerly at open — but over a dead-by-now transport
    // with no retries the *session step* is what we exercise: force a
    // reload by stepping to 0 again is a cache hit, so instead assert
    // on the initial load's partiality through the frame content.
    let shown = session.frame().clone();
    assert!(
        shown.points.len() < reference.points.len(),
        "the partial must hold a strict prefix: {} vs {}",
        shown.points.len(),
        reference.points.len()
    );
    assert!(!shown.points.is_empty(), "the coarse head was renderable");
    assert_eq!(
        &reference.points[..shown.points.len()],
        &shown.points[..],
        "partial points are a prefix of the real frame"
    );
    // The coarse grid carries the full density mass at reduced dims.
    assert_eq!(shown.grid.total(), reference.grid.total());
    let _ = session.apply(SessionOp::Orbit(0.3, 0.1));
    server.shutdown();
}

/// A v1-capped session must get an in-band rejection for progressive
/// requests (the chunk wire only exists under v2) and keep serving
/// plain v1 fetches on the same connection — the frozen-byte-stream
/// guarantee for pre-v2 clients.
#[test]
fn v1_sessions_reject_progressive_in_band_and_keep_serving() {
    let server = FrameServer::spawn_loopback(stores(1, 800), ServerConfig::default()).unwrap();
    let mut client = Client::connect_with(
        server.addr(),
        ClientConfig {
            max_version: V1,
            ..ClientConfig::no_retry()
        },
    )
    .unwrap();
    assert_eq!(client.negotiated_version(), V1);
    let err = client.fetch_progressive(0, f64::INFINITY, 0).unwrap_err();
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, ERR_BAD_REQUEST);
            assert!(message.contains("v2"), "{message}");
        }
        other => panic!("expected an in-band rejection, got {other}"),
    }
    // The connection survives the rejection and serves v1 fetches.
    let (frame, _) = client.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 0);
    server.shutdown();
}
