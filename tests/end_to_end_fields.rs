//! End-to-end test of the §3 pipeline: EM solve → field capture → seeding
//! → self-orienting surfaces → render, crossing every field-side crate.

use accelviz::core::scene::{render_line_set, LineRepresentation};
use accelviz::emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz::emsim::energy::total_energy;
use accelviz::emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz::emsim::sample::{FieldKind, FieldSampler, VectorField3};
use accelviz::fieldlines::compact::{deserialize_lines, serialize_lines};
use accelviz::fieldlines::integrate::TraceParams;
use accelviz::fieldlines::line::FieldLine;
use accelviz::fieldlines::seeding::{seed_lines, SeedingParams};
use accelviz::fieldlines::style::LineStyle;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;

fn driven_sim() -> FdtdSim {
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 10));
    sim.run(400);
    sim
}

fn lines_of(field: &FieldSampler, n: usize) -> Vec<FieldLine> {
    seed_lines(
        field,
        &SeedingParams {
            n_lines: n,
            trace: TraceParams {
                step: 0.05,
                max_steps: 150,
                min_magnitude: 1e-6 * field.max_magnitude().max(1e-300),
                bidirectional: true,
            },
            seed: 5,
            min_magnitude_frac: 1e-3,
        },
    )
    .into_iter()
    .map(|sl| sl.line)
    .collect()
}

#[test]
fn solve_seed_render_roundtrip() {
    let sim = driven_sim();
    assert!(
        total_energy(&sim) > 0.0,
        "driven structure must be energized"
    );
    let field = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = lines_of(&field, 80);
    assert!(!lines.is_empty());

    // Every traced point lies inside the domain and in vacuum-reachable
    // space (the field is zero in metal, so lines cannot enter it).
    for line in &lines {
        for p in &line.points {
            assert!(field.bounds().contains(*p));
        }
    }

    // Render as self-orienting surfaces: visible output.
    let b = field.bounds();
    let cam = Camera::orbit(b.center(), b.longest_edge() * 1.8, 0.9, 0.35, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let mut fb = Framebuffer::new(128, 128);
    let stats = render_line_set(
        &mut fb,
        &cam,
        &lines,
        LineRepresentation::SelfOrientingSurfaces,
        &style,
        0.015,
    );
    assert!(stats.triangles > 0);
    assert!(fb.lit_pixel_count(0.01) > 0, "field lines must be visible");
}

#[test]
fn compact_roundtrip_preserves_renderability() {
    // The paper stores pre-integrated lines instead of raw fields; the
    // deserialized lines must render the same silhouette.
    let sim = driven_sim();
    let field = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = lines_of(&field, 50);
    let mut buf = Vec::new();
    serialize_lines(&mut buf, &lines).unwrap();
    let restored = deserialize_lines(&mut buf.as_slice()).unwrap();
    assert_eq!(restored.len(), lines.len());

    let b = field.bounds();
    let cam = Camera::orbit(b.center(), b.longest_edge() * 1.8, 0.9, 0.35, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let mut fb_orig = Framebuffer::new(96, 96);
    let mut fb_rest = Framebuffer::new(96, 96);
    render_line_set(
        &mut fb_orig,
        &cam,
        &lines,
        LineRepresentation::FlatLines,
        &style,
        0.015,
    );
    render_line_set(
        &mut fb_rest,
        &cam,
        &restored,
        LineRepresentation::FlatLines,
        &style,
        0.015,
    );
    // f32 quantization moves vertices sub-pixel: images are close.
    assert!(
        fb_orig.mse(&fb_rest) < 1e-3,
        "restored lines must render nearly identically: mse {}",
        fb_orig.mse(&fb_rest)
    );
}

#[test]
fn electric_and_magnetic_fields_are_linked() {
    // Faraday's law in the solver: a ringing E field implies a ringing B
    // field of comparable energy scale (normalized units).
    let sim = driven_sim();
    let e = FieldSampler::capture(&sim, FieldKind::Electric);
    let b = FieldSampler::capture(&sim, FieldKind::Magnetic);
    assert!(e.max_magnitude() > 0.0);
    assert!(b.max_magnitude() > 0.0);
    let ratio = e.max_magnitude() / b.max_magnitude();
    assert!(
        (0.02..50.0).contains(&ratio),
        "E/B magnitude ratio implausible: {ratio}"
    );
}

#[test]
fn incremental_prefixes_render_monotonically_more() {
    let sim = driven_sim();
    let field = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = lines_of(&field, 120);
    let b = field.bounds();
    let cam = Camera::orbit(b.center(), b.longest_edge() * 1.8, 0.9, 0.35, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let mut prev_lit = 0;
    for frac in [0.25, 0.5, 1.0] {
        let prefix = ((lines.len() as f64 * frac) as usize).max(1);
        let mut fb = Framebuffer::new(128, 128);
        render_line_set(
            &mut fb,
            &cam,
            &lines[..prefix],
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.015,
        );
        let lit = fb.lit_pixel_count(0.01);
        assert!(
            lit >= prev_lit,
            "more lines must never shrink coverage: {lit} < {prev_lit}"
        );
        prev_lit = lit;
    }
}
