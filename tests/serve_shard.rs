//! Acceptance for the shard/router layer: a sharded service is
//! indistinguishable from one big server (bit-identical frames and
//! catalog, both wire versions), a thundering herd collapses to one
//! upstream extraction per shard, a dead shard degrades per the PR 5
//! model and recovers on restart, and `Stats` through the router is the
//! sum of the shards.

use accelviz::beam::distribution::Distribution;
use accelviz::core::shard::ShardSpec;
use accelviz::core::viewer::FrameSource;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::protocol::{ERR_BAD_THRESHOLD, ERR_NO_SUCH_FRAME};
use accelviz::serve::router::{
    CTR_ROUTER_CACHE_HITS, CTR_ROUTER_CACHE_MISSES, CTR_ROUTER_COALESCED,
    CTR_ROUTER_UPSTREAM_ERRORS, CTR_ROUTER_UPSTREAM_FETCHES,
};
use accelviz::serve::stats::{CTR_CACHE_MISSES, CTR_FRAMES_SERVED};
use accelviz::serve::wire::{V1, V2};
use accelviz::serve::{
    Client, ClientConfig, FrameRouter, FrameServer, RemoteFrames, RetryPolicy, RouterConfig,
    ServeError, ServerConfig, ShardMap, ShardedFrameService,
};
use std::io;
use std::sync::{Arc, Barrier};

/// The fig-1 frame set this suite serves (same convention as the other
/// serve suites: frame `i` is an 800-particle beam seeded `i + 1`).
const FRAMES: usize = 5;

fn stores(n: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(800, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

/// Fast upstream retries and a minimal router cache byte budget (only
/// the most recent frame stays resident), so the kill test exercises
/// the upstream hop instead of the router's own cache.
fn fast_upstream(seed: u64) -> RouterConfig {
    RouterConfig {
        cache_bytes: 1,
        upstream: ClientConfig {
            retry: Some(RetryPolicy::fast(seed)),
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn pinned(version: u16) -> ClientConfig {
    ClientConfig {
        max_version: version,
        ..ClientConfig::no_retry()
    }
}

#[test]
fn empty_shard_set_is_rejected_at_construction() {
    let err = ShardedFrameService::spawn_loopback(
        stores(2),
        0,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .map(|_| ())
    .unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

    let err = FrameRouter::spawn(
        "127.0.0.1:0",
        Vec::new(),
        ShardMap::shared(&ShardSpec::new(1), 3),
        RouterConfig::default(),
    )
    .map(|_| ())
    .unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

    // A shard list that disagrees with the map is just as malformed.
    let lone = FrameServer::spawn_loopback(stores(1), ServerConfig::default()).unwrap();
    let err = FrameRouter::spawn(
        "127.0.0.1:0",
        vec![lone.addr()],
        ShardMap::shared(&ShardSpec::new(2), 3),
        RouterConfig::default(),
    )
    .map(|_| ())
    .unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    lone.shutdown();
}

/// A one-shard service is the degenerate deployment: every request
/// proxies to the single shard, and the bytes a client receives — frame
/// payloads included — are identical to talking to that server directly,
/// under both wire versions.
#[test]
fn one_shard_service_is_bit_identical_to_a_direct_server() {
    let data = stores(FRAMES);
    let direct = FrameServer::spawn_loopback(data.clone(), ServerConfig::default()).unwrap();
    let service = ShardedFrameService::spawn_loopback(
        data,
        1,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();

    for version in [V1, V2] {
        let mut a = Client::connect_with(direct.addr(), pinned(version)).unwrap();
        let mut b = Client::connect_with(service.addr(), pinned(version)).unwrap();
        assert_eq!(a.negotiated_version(), version);
        assert_eq!(b.negotiated_version(), version);
        assert_eq!(a.list_frames().unwrap(), b.list_frames().unwrap());
        for frame in 0..FRAMES as u32 {
            let (fa, ma) = a.fetch(frame, f64::INFINITY).unwrap();
            let (fb, mb) = b.fetch(frame, f64::INFINITY).unwrap();
            assert_eq!(fa, fb, "frame {frame} differs at version {version}");
            assert_eq!(
                ma.wire_bytes, mb.wire_bytes,
                "frame {frame} wire bytes differ at version {version}"
            );
        }
    }
    direct.shutdown();
    service.shutdown();
}

/// The headline acceptance: a 2-shard loopback service serves every
/// fig-1 frame bit-identical to a single-server run, at both wire
/// versions, and its merged catalog equals the direct catalog.
#[test]
fn two_shard_service_serves_every_frame_bit_identical_to_one_server() {
    let data = stores(FRAMES);
    let direct = FrameServer::spawn_loopback(data.clone(), ServerConfig::default()).unwrap();
    let service = ShardedFrameService::spawn_loopback(
        data,
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();
    // The rendezvous layout actually split the catalog.
    let spec = ShardSpec::new(2);
    let owners: Vec<usize> = spec.assignments(FRAMES);
    assert!(
        owners.contains(&0) && owners.contains(&1),
        "5 frames over 2 shards must populate both: {owners:?}"
    );

    for version in [V1, V2] {
        let mut a = Client::connect_with(direct.addr(), pinned(version)).unwrap();
        let mut b = Client::connect_with(service.addr(), pinned(version)).unwrap();
        assert_eq!(a.list_frames().unwrap(), b.list_frames().unwrap());
        for frame in 0..FRAMES as u32 {
            let (fa, ma) = a.fetch(frame, f64::INFINITY).unwrap();
            let (fb, mb) = b.fetch(frame, f64::INFINITY).unwrap();
            assert_eq!(fa, fb, "frame {frame} differs at version {version}");
            assert_eq!(ma.wire_bytes, mb.wire_bytes);
        }
    }
    direct.shutdown();
    service.shutdown();
}

/// A 32-client thundering herd — 16 on a shard-0 frame, 16 on a shard-1
/// frame — costs each shard exactly one extraction: the router coalesces
/// identical in-flight requests and caches the result, counter-asserted
/// on both sides of the hop.
#[test]
fn thundering_herd_collapses_to_one_upstream_extraction_per_shard() {
    let service = ShardedFrameService::spawn_loopback(
        stores(FRAMES),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();
    let spec = ShardSpec::new(2);
    let of_shard = |s: usize| {
        (0..FRAMES as u32)
            .find(|&f| spec.owner_of(f) == s)
            .expect("both shards own frames")
    };
    let targets = [of_shard(0), of_shard(1)];

    const HERD: usize = 32;
    let gun = Arc::new(Barrier::new(HERD));
    let addr = service.addr();
    let herd: Vec<_> = (0..HERD)
        .map(|i| {
            let gun = Arc::clone(&gun);
            let frame = targets[i % 2];
            std::thread::spawn(move || {
                let config = ClientConfig {
                    retry: Some(RetryPolicy::fast(7_000 + i as u64)),
                    ..ClientConfig::default()
                };
                let mut client = Client::connect_with(addr, config).expect("herd connect");
                gun.wait();
                let (f, _) = client.fetch(frame, f64::INFINITY).expect("herd fetch");
                assert_eq!(f.step, frame as usize);
            })
        })
        .collect();
    for h in herd {
        h.join().expect("herd client must not panic");
    }

    // Each shard ran exactly one extraction and served exactly one frame.
    for s in 0..2 {
        let m = service.shard(s).metrics();
        assert_eq!(
            m.counter(CTR_FRAMES_SERVED),
            1,
            "shard {s} answered more than one upstream fetch"
        );
        assert_eq!(m.counter(CTR_CACHE_MISSES), 1);
    }
    // And the router's ledger shows the collapse: 2 upstream fetches, 30
    // requests absorbed by coalescing or the cache.
    let rm = service.router().metrics();
    assert_eq!(rm.counter(CTR_ROUTER_UPSTREAM_FETCHES), 2);
    assert_eq!(rm.counter(CTR_ROUTER_CACHE_MISSES), 2);
    assert_eq!(rm.counter(CTR_ROUTER_CACHE_HITS), (HERD - 2) as u64);
    assert!(rm.counter(CTR_ROUTER_COALESCED) <= (HERD - 2) as u64);
    service.shutdown();
}

/// Killing one shard mid-session degrades only that shard's frames — the
/// viewer-facing client falls back to its flagged stale frame, the other
/// shard keeps serving genuine frames — and repointing the router at a
/// restarted shard heals the same requests.
#[test]
fn shard_kill_mid_session_degrades_and_recovers_on_restart() {
    let data = stores(FRAMES);
    let spec = ShardSpec::new(2);
    let map = ShardMap::sliced(&spec, FRAMES);
    let mut slices: Vec<Vec<PartitionedData>> = vec![Vec::new(), Vec::new()];
    for (g, d) in data.iter().enumerate() {
        slices[spec.owner_of(g as u32)].push(d.clone());
    }
    let shard0 = FrameServer::spawn_loopback(slices[0].clone(), ServerConfig::default()).unwrap();
    let shard1 = FrameServer::spawn_loopback(slices[1].clone(), ServerConfig::default()).unwrap();
    let router = FrameRouter::spawn(
        "127.0.0.1:0",
        vec![shard0.addr(), shard1.addr()],
        map,
        fast_upstream(11),
    )
    .unwrap();

    // Reference frames from a direct server of the unsliced data.
    let direct = FrameServer::spawn_loopback(data, ServerConfig::default()).unwrap();
    let mut reference = Vec::new();
    let mut clean = Client::connect_with(direct.addr(), ClientConfig::no_retry()).unwrap();
    for f in 0..FRAMES as u32 {
        reference.push(clean.fetch(f, f64::INFINITY).unwrap().0);
    }
    drop(clean);
    direct.shutdown();

    let survivor = (0..FRAMES as u32).find(|&f| spec.owner_of(f) == 0).unwrap();
    let victim = (0..FRAMES as u32).find(|&f| spec.owner_of(f) == 1).unwrap();

    let client = Client::connect_with(router.addr(), ClientConfig::no_retry()).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, 2);

    // Healthy session: both shards' frames arrive genuine.
    let (got, load) = remote.load(survivor as usize).unwrap();
    assert!(!load.degraded);
    assert_eq!(&*got, &reference[survivor as usize]);
    let (got, load) = remote.load(victim as usize).unwrap();
    assert!(!load.degraded);
    assert_eq!(&*got, &reference[victim as usize]);

    // Kill shard 1 mid-session. Its frames degrade to the client's stale
    // resident frame — flagged, not errored — while shard 0's keep
    // flowing genuine. (The client holds 2 resident frames, so the
    // killed shard's frame is evicted before being re-requested below.)
    shard1.shutdown();
    let (_, load) = remote.load(survivor as usize).unwrap();
    assert!(!load.degraded, "the surviving shard must be unaffected");
    // Force the victim frame out of the client's resident set.
    let other_survivor = (0..FRAMES as u32)
        .filter(|&f| spec.owner_of(f) == 0)
        .nth(1)
        .unwrap_or(survivor);
    remote.load(other_survivor as usize).unwrap();
    let (stale, load) = remote.load(victim as usize).unwrap();
    assert!(
        load.degraded,
        "a dead shard must degrade its frames, not fail the session"
    );
    assert_ne!(
        &*stale, &reference[victim as usize],
        "the degraded answer is a stale substitute, not the real frame"
    );
    assert!(remote.degraded_loads >= 1);
    assert!(
        router.metrics().counter(CTR_ROUTER_UPSTREAM_ERRORS) >= 1,
        "the router must record the exhausted upstream retries"
    );

    // Restart the shard (new port — the OS may not rebind the old one
    // promptly) and repoint the router. The same request heals.
    let shard1b = FrameServer::spawn_loopback(slices[1].clone(), ServerConfig::default()).unwrap();
    router.set_shard_addr(1, shard1b.addr()).unwrap();
    let (healed, load) = remote.load(victim as usize).unwrap();
    assert!(!load.degraded, "a restarted shard must heal the session");
    assert_eq!(&*healed, &reference[victim as usize]);

    assert!(router.set_shard_addr(9, shard1b.addr()).is_err());
    router.shutdown();
    shard0.shutdown();
    shard1b.shutdown();
}

/// `Stats` through the router is the sum of the shards' counters; the
/// local [`ShardedFrameService::stats`] sum agrees with the wire reply.
#[test]
fn stats_through_the_router_aggregate_the_shards() {
    let service = ShardedFrameService::spawn_loopback(
        stores(FRAMES),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    for f in 0..FRAMES as u32 {
        client.fetch(f, f64::INFINITY).unwrap();
    }
    // Revisit one frame: served from the router cache, invisible to the
    // shards.
    client.fetch(0, f64::INFINITY).unwrap();

    let wire = client.stats().unwrap();
    assert_eq!(wire.frames_served, FRAMES as u64);
    assert_eq!(wire.cache_misses, FRAMES as u64);
    assert!(wire.bytes_sent > 0);
    assert!(wire.latency.total() > 0);
    assert!(
        wire.frame_bytes_wire < wire.frame_bytes_raw,
        "v2 shard hops must compress"
    );

    let local = service.stats();
    assert_eq!(local.frames_served, wire.frames_served);
    assert_eq!(local.cache_misses, wire.cache_misses);
    assert_eq!(local.frame_bytes_raw, wire.frame_bytes_raw);
    service.shutdown();
}

/// The router answers catalog misses and NaN thresholds in-band, exactly
/// like a direct server — the session survives the rejection.
#[test]
fn router_rejects_bad_requests_in_band() {
    let service = ShardedFrameService::spawn_loopback(
        stores(2),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();

    match client.fetch(99, f64::INFINITY) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ERR_NO_SUCH_FRAME),
        other => panic!("expected ERR_NO_SUCH_FRAME, got {other:?}"),
    }
    match client.fetch(0, f64::NAN) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ERR_BAD_THRESHOLD),
        other => panic!("expected ERR_BAD_THRESHOLD, got {other:?}"),
    }
    // The connection survived both rejections.
    let (frame, _) = client.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 0);
    service.shutdown();
}

/// The stored backend shards too: N servers sharing one out-of-core run
/// file behind a router serve bit-identical frames to a direct stored
/// server.
#[test]
fn stored_sharded_service_matches_a_direct_stored_server() {
    use accelviz::store::run::write_run_file;
    use accelviz::store::ResidentRun;

    let data = stores(4);
    let path = std::env::temp_dir().join(format!("accelviz-shard-run-{}", std::process::id()));
    write_run_file(&path, &data, 4_096).unwrap();
    let run = Arc::new(ResidentRun::open(&path, u64::MAX).unwrap());

    let direct =
        FrameServer::spawn_stored_loopback(Arc::clone(&run), ServerConfig::default()).unwrap();
    let service = ShardedFrameService::spawn_stored_loopback(
        Arc::clone(&run),
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .unwrap();

    let mut a = Client::connect_with(direct.addr(), ClientConfig::no_retry()).unwrap();
    let mut b = Client::connect_with(service.addr(), ClientConfig::no_retry()).unwrap();
    assert_eq!(a.list_frames().unwrap(), b.list_frames().unwrap());
    for frame in 0..4u32 {
        let (fa, ma) = a.fetch(frame, f64::INFINITY).unwrap();
        let (fb, mb) = b.fetch(frame, f64::INFINITY).unwrap();
        assert_eq!(fa, fb, "stored frame {frame} differs through the router");
        assert_eq!(ma.wire_bytes, mb.wire_bytes);
    }
    drop(a);
    drop(b);
    direct.shutdown();
    service.shutdown();
    drop(run);
    let _ = std::fs::remove_file(&path);
}
