//! Integration tests of the interactive session and the on-disk two-part
//! store, crossing the full stack through real files.

use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::scene::RenderMode;
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::{extract, threshold_for_budget};
use accelviz::octree::plots::PlotType;
use accelviz::octree::store_io::{
    extract_from_files, read_partitioned, write_node_file, write_particle_file, CountingReader,
};
use accelviz::render::framebuffer::Framebuffer;
use std::fs;
use std::io::BufReader;

fn frames(n: usize) -> Vec<HybridFrame> {
    let mut sim = BeamSimulation::new(BeamConfig::zero_current(2_000, 3));
    let series = sim.run(n - 1, 4);
    series
        .iter()
        .map(|snap| {
            let data = partition(&snap.particles, PlotType::XYZ, BuildParams::default());
            let t = threshold_for_budget(&data, 600);
            HybridFrame::from_partition(&data, snap.step, t, [16, 16, 16])
        })
        .collect()
}

#[test]
fn scripted_session_stays_interactive() {
    let mut s = ViewerSession::open(frames(4));
    // A realistic user script: step, drag the boundary, rotate, toggle
    // modes, render after each — no operation may reprocess.
    let script = [
        SessionOp::StepTo(1),
        SessionOp::SetBoundary(0.02),
        SessionOp::Orbit(0.4, 0.1),
        SessionOp::SetMode(RenderMode::VolumeOnly),
        SessionOp::StepTo(2),
        SessionOp::SetMode(RenderMode::Hybrid),
        SessionOp::SetBoundary(0.005),
        SessionOp::Orbit(-0.7, 0.0),
        SessionOp::StepTo(1), // revisit: must be a cache hit
    ];
    let mut io_total = 0.0;
    for (i, op) in script.iter().enumerate() {
        let cost = s.apply(*op);
        assert!(!cost.reprocessed, "op {i} reprocessed");
        io_total += cost.io_seconds;
        let mut fb = Framebuffer::new(48, 48);
        let stats = s.render(&mut fb);
        assert!(
            stats.volume_samples > 0
                || stats.points_drawn > 0
                || matches!(op, SessionOp::SetMode(_))
        );
    }
    // Only the two first visits of frames 1 and 2 cost disk time; the
    // revisit was free.
    assert!(io_total > 0.0);
    let revisit = s.apply(SessionOp::StepTo(2));
    assert_eq!(revisit.io_seconds, 0.0);
}

#[test]
fn two_part_store_roundtrips_through_the_filesystem() {
    let mut sim = BeamSimulation::new(BeamConfig::zero_current(3_000, 9));
    sim.run(1, 4);
    let snap = sim.snapshot(1);
    let data = partition(&snap.particles, PlotType::X_PX_Y, BuildParams::default());

    let dir = std::env::temp_dir().join(format!("accelviz_store_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let node_path = dir.join("frame.nodes");
    let particle_path = dir.join("frame.particles");
    {
        let mut nf = fs::File::create(&node_path).unwrap();
        let mut pf = fs::File::create(&particle_path).unwrap();
        write_node_file(&data, &mut nf).unwrap();
        write_particle_file(&data, &mut pf).unwrap();
    }

    // Full read-back.
    let back = read_partitioned(
        &mut BufReader::new(fs::File::open(&node_path).unwrap()),
        &mut BufReader::new(fs::File::open(&particle_path).unwrap()),
    )
    .unwrap();
    assert_eq!(back.particles(), data.particles());

    // Prefix-only extraction from disk: bytes read < file size.
    let t = threshold_for_budget(&data, 400);
    let expected = extract(&data, t);
    let mut counting = CountingReader::new(BufReader::new(fs::File::open(&particle_path).unwrap()));
    let result = extract_from_files(
        &mut BufReader::new(fs::File::open(&node_path).unwrap()),
        &mut counting,
        t,
    )
    .unwrap();
    assert_eq!(result.particles.as_slice(), expected.particles);
    let file_size = fs::metadata(&particle_path).unwrap().len();
    assert!(
        counting.bytes < file_size / 2,
        "prefix read {} of {file_size} bytes",
        counting.bytes
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_over_reloaded_frames_matches_original() {
    // Save one frame's partition to disk, reload, rebuild the hybrid
    // frame, and check the session renders identically.
    let mut sim = BeamSimulation::new(BeamConfig::zero_current(2_000, 5));
    sim.run(1, 4);
    let snap = sim.snapshot(1);
    let data = partition(&snap.particles, PlotType::XYZ, BuildParams::default());
    let t = threshold_for_budget(&data, 500);

    let mut node_file = Vec::new();
    let mut particle_file = Vec::new();
    write_node_file(&data, &mut node_file).unwrap();
    write_particle_file(&data, &mut particle_file).unwrap();
    let reloaded =
        read_partitioned(&mut node_file.as_slice(), &mut particle_file.as_slice()).unwrap();

    let frame_a = HybridFrame::from_partition(&data, 1, t, [16, 16, 16]);
    let frame_b = HybridFrame::from_partition(&reloaded, 1, t, [16, 16, 16]);

    let mut sa = ViewerSession::open(vec![frame_a]);
    let mut sb = ViewerSession::open(vec![frame_b]);
    for s in [&mut sa, &mut sb] {
        s.apply(SessionOp::SetBoundary(0.01));
        s.apply(SessionOp::Orbit(0.3, 0.2));
    }
    let mut fa = Framebuffer::new(64, 64);
    let mut fb = Framebuffer::new(64, 64);
    sa.render(&mut fa);
    sb.render(&mut fb);
    assert_eq!(fa.mse(&fb), 0.0, "reloaded data must render identically");
}
