//! End-to-end test of the §2 pipeline: simulate → partition → extract →
//! render, crossing every beam-side crate boundary.

use accelviz::beam::diagnostics::BeamDiagnostics;
use accelviz::beam::io::{read_snapshot, snapshot_to_vec};
use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::pipeline::{process_run, PipelineParams};
use accelviz::core::scene::{render_hybrid_frame, RenderMode};
use accelviz::core::transfer::TransferFunctionPair;
use accelviz::core::viewer::FrameCache;
use accelviz::math::Rgba;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::{extract, threshold_for_budget};
use accelviz::octree::plots::PlotType;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::points::PointStyle;
use accelviz::render::volume::VolumeStyle;

fn small_run() -> Vec<accelviz::beam::simulation::Snapshot> {
    let mut sim = BeamSimulation::new(BeamConfig::zero_current(3_000, 17));
    sim.run(4, 4)
}

#[test]
fn simulate_partition_extract_render_roundtrip() {
    let snaps = small_run();
    let last = snaps.last().unwrap();

    // IO roundtrip of the raw snapshot.
    let bytes = snapshot_to_vec(last.step as u64, &last.particles);
    let (step, particles) = read_snapshot(&mut bytes.as_slice()).unwrap();
    assert_eq!(step, last.step as u64);
    assert_eq!(particles, last.particles);

    // Partition and extract.
    let data = partition(
        &particles,
        PlotType::XYZ,
        BuildParams {
            max_depth: 5,
            leaf_capacity: 128,
            gradient_refinement: None,
        },
    );
    data.validate().unwrap();
    let threshold = threshold_for_budget(&data, 800);
    let ex = extract(&data, threshold);
    assert!(ex.particles.len() <= 800);

    // Hybrid frame renders something visible.
    let frame = HybridFrame::from_partition(&data, last.step, threshold, [32, 32, 32]);
    let cam = Camera::orbit(
        frame.bounds.center(),
        frame.bounds.longest_edge() * 2.2,
        0.5,
        0.3,
        1.0,
    );
    let tfs = TransferFunctionPair::linked_at(0.05, 0.02);
    let mut fb = Framebuffer::new(128, 128);
    let stats = render_hybrid_frame(
        &mut fb,
        &cam,
        &frame,
        &tfs,
        RenderMode::Hybrid,
        &VolumeStyle {
            steps: 32,
            ..Default::default()
        },
        &PointStyle::default(),
    );
    assert!(stats.volume_samples > 0);
    assert!(
        fb.lit_pixel_count(0.005) > 0,
        "rendered image must show the beam"
    );
}

#[test]
fn pipeline_and_viewer_agree_on_sizes() {
    let snaps = small_run();
    let params = PipelineParams {
        plot: PlotType::XYZ,
        build: BuildParams {
            max_depth: 5,
            leaf_capacity: 128,
            gradient_refinement: None,
        },
        point_budget: 500,
        volume_dims: [16, 16, 16],
    };
    let frames = process_run(&snaps, &params);
    assert_eq!(frames.len(), snaps.len());

    // Every frame fits the budget and its byte accounting is exact.
    for f in &frames {
        assert!(f.points.len() <= 500);
        assert_eq!(f.total_bytes(), f.point_bytes() + f.volume_bytes());
        assert_eq!(f.point_bytes(), f.points.len() as u64 * 48);
    }

    // The viewer holds what the budget allows, and cached stepping is
    // free.
    let sizes: Vec<(u64, u64)> = frames
        .iter()
        .map(|f| (f.total_bytes(), f.volume_bytes()))
        .collect();
    let budget = sizes.iter().map(|s| s.0).sum::<u64>();
    let cache = FrameCache::new(
        sizes,
        budget, // everything fits
        10e6,
        accelviz::render::texmem::TextureMemory::geforce_class(),
    );
    for i in 0..frames.len() {
        assert!(!cache.step_to(i).cache_hit);
    }
    for i in 0..frames.len() {
        let load = cache.step_to(i);
        assert!(load.cache_hit);
        assert_eq!(load.bytes_loaded, 0);
    }
}

#[test]
fn hybrid_preserves_halo_particles_exactly() {
    // The extracted points must be exactly the particles of the
    // lowest-density octree leaves — bit-identical, not resampled.
    let snaps = small_run();
    let data = partition(
        &snaps[0].particles,
        PlotType::XYZ,
        BuildParams {
            max_depth: 5,
            leaf_capacity: 128,
            gradient_refinement: None,
        },
    );
    let threshold = threshold_for_budget(&data, 600);
    let frame = HybridFrame::from_partition(&data, 0, threshold, [8, 8, 8]);
    let ex = extract(&data, threshold);
    assert_eq!(frame.points.as_slice(), ex.particles);
    // And they really are low-density leaves: every kept particle's node
    // density is below the threshold.
    for &d in &frame.point_densities {
        assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn zero_current_series_conserves_emittance_through_the_pipeline() {
    // Crossing crates: the physics invariant survives snapshotting,
    // serialization, and partitioning (which must not mutate particles).
    let snaps = small_run();
    let d0 = BeamDiagnostics::of(&snaps[0].particles);
    let d1 = BeamDiagnostics::of(&snaps.last().unwrap().particles);
    assert!((d1.emittance_x / d0.emittance_x - 1.0).abs() < 1e-9);
    let data = partition(
        &snaps.last().unwrap().particles,
        PlotType::XYZ,
        BuildParams::default(),
    );
    let d2 = BeamDiagnostics::of(data.particles());
    assert!((d2.emittance_x / d1.emittance_x - 1.0).abs() < 1e-12);
}

#[test]
fn fig4_decomposition_composes() {
    // VolumeOnly and PointsOnly each draw a subset; Hybrid draws at least
    // as many lit pixels as either part alone.
    let snaps = small_run();
    let data = partition(&snaps[0].particles, PlotType::XYZ, BuildParams::default());
    let t = threshold_for_budget(&data, 1_000);
    let frame = HybridFrame::from_partition(&data, 0, t, [16, 16, 16]);
    let cam = Camera::orbit(
        frame.bounds.center(),
        frame.bounds.longest_edge() * 2.2,
        0.5,
        0.3,
        1.0,
    );
    let tfs = TransferFunctionPair::linked_at(0.05, 0.02);
    let vs = VolumeStyle {
        steps: 24,
        ..Default::default()
    };
    let ps = PointStyle {
        color: Rgba::WHITE,
        ..Default::default()
    };

    let lit = |mode| {
        let mut fb = Framebuffer::new(96, 96);
        render_hybrid_frame(&mut fb, &cam, &frame, &tfs, mode, &vs, &ps);
        fb.lit_pixel_count(0.003)
    };
    let vol = lit(RenderMode::VolumeOnly);
    let pts = lit(RenderMode::PointsOnly);
    let both = lit(RenderMode::Hybrid);
    assert!(vol > 0 && pts > 0);
    assert!(
        both >= vol.max(pts),
        "combined ({both}) ⊇ parts ({vol}, {pts})"
    );
}
