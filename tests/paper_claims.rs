//! The paper's quantitative claims, each as an executable assertion.
//! These are the headline numbers recorded in EXPERIMENTS.md.

use accelviz::emsim::courant::{cell_size_for_steps, courant_dt, steps_for_duration};
use accelviz::fieldlines::sos::sos_triangle_count;
use accelviz::fieldlines::tube::tube_triangle_count;

#[test]
fn claim_5gb_per_100m_particle_step() {
    // §2.1: "The primary simulation, consisting of 100 million particles,
    // requires 5 GB of storage per time step."
    let gb = accelviz::beam::io::snapshot_bytes(100_000_000) as f64 / 1e9;
    assert!((4.5..5.1).contains(&gb), "{gb} GB");
}

#[test]
fn claim_48gb_per_billion_particle_step() {
    // §2.1: "the initial time step of a billion point simulation requires
    // 48 GB of storage."
    let gb = accelviz::beam::io::snapshot_bytes(1_000_000_000) as f64 / 1e9;
    assert!((47.9..48.2).contains(&gb), "{gb} GB");
}

#[test]
fn claim_sos_uses_5_to_6_times_fewer_triangles() {
    // §3.1: self-orienting strips use "about five to six times less than a
    // typical streamtube representation would require". A 10–12-sided
    // tube costs 10–12× the strip's triangles; even a minimal 6-sided
    // tube costs 6×.
    for n in [10usize, 50, 500] {
        let sos = sos_triangle_count(n);
        assert!(tube_triangle_count(n, 6) >= 6 * sos);
        assert!(tube_triangle_count(n, 12) == 12 * sos);
    }
}

#[test]
fn claim_40ns_is_326700_steps() {
    // §3.4: "simulation of this 12-cell structure reaches steady state at
    // about 40 nanoseconds, which corresponds to 326,700 time steps."
    let dx = cell_size_for_steps(40e-9, 326_700, 0.99);
    let dt = courant_dt(dx, dx, dx, 0.99);
    let steps = steps_for_duration(40e-9, dt);
    assert!((steps as i64 - 326_700).abs() <= 1, "{steps} steps");
}

#[test]
fn claim_80mb_per_field_step_26tb_total() {
    // §3.4: "about 80 megabytes of storage space to save one time step of
    // the electric and magnetic fields together, over 26 terabytes ...
    // for the overall data set."
    let mb = accelviz::emsim::io::snapshot_bytes(1_600_000) as f64 / 1e6;
    assert!((70.0..85.0).contains(&mb), "{mb} MB");
    let tb = accelviz::emsim::io::run_bytes(1_600_000, 326_700) as f64 / 1e12;
    assert!((24.0..27.0).contains(&tb), "{tb} TB");
}

#[test]
fn claim_field_line_storage_saving_of_25x() {
    // §3.4: "The typical saving is about a factor of 25." A paper-typical
    // budget of a few thousand pre-integrated lines versus the 1.6
    // M-element raw dump.
    use accelviz::fieldlines::compact::saving_factor;
    use accelviz::fieldlines::line::FieldLine;
    use accelviz::math::Vec3;
    let lines: Vec<FieldLine> = (0..4_000)
        .map(|_| {
            let mut l = FieldLine::new();
            for i in 0..47 {
                l.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::UNIT_X, 1.0);
            }
            l
        })
        .collect();
    let f = saving_factor(&lines, 1_600_000);
    assert!((20.0..32.0).contains(&f), "saving factor {f}");
}

#[test]
fn claim_10s_load_for_100mb_frame() {
    // §2.5: "If a frame is not in memory, it is loaded from disk, a
    // process that takes around 10 seconds for a 100 MB time step."
    use accelviz::core::viewer::FrameCache;
    let cache = FrameCache::paper_desktop(vec![(100 << 20, 64 * 64 * 64)]);
    let load = cache.step_to(0);
    assert!(!load.cache_hit);
    assert!((9.0..12.0).contains(&load.seconds), "{} s", load.seconds);
}

#[test]
fn claim_ten_frames_fit_in_memory() {
    // §2.5: "a high-end PC is capable of holding around 10 time steps in
    // memory at once" (100 MB frames, ~1 GB of usable memory).
    use accelviz::core::viewer::FrameCache;
    let cache = FrameCache::paper_desktop(vec![(100 << 20, 64 * 64 * 64); 30]);
    for f in 0..30 {
        cache.step_to(f);
    }
    assert_eq!(cache.resident_count(), 10);
}

#[test]
fn claim_256cubed_is_64x_the_texture_of_64cubed() {
    // Figure 1's two volume resolutions: the texture-memory ratio that
    // forces the low-res choice on commodity hardware.
    use accelviz::math::{Aabb, Vec3};
    use accelviz::octree::density::DensityGrid;
    let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
    let hi = DensityGrid::zeros(b, [256, 256, 256]);
    let lo = DensityGrid::zeros(b, [64, 64, 64]);
    assert_eq!(hi.texture_bytes() / lo.texture_bytes(), 64);
    // And the 256³ texture alone eats a quarter of a 64 MB card.
    assert!(hi.texture_bytes() * 4 >= (64 << 20));
}

#[test]
fn claim_wide_area_transfer_becomes_practical() {
    // §2.1: hybrid data "can be more efficiently transferred from the
    // computer where it was generated to a remote computer ... thousands
    // of miles away": a 100 MB hybrid frame moves in seconds where the
    // raw 5 GB step takes minutes.
    use accelviz::core::remote::TransferModel;
    let wan = TransferModel::wide_area();
    assert!(wan.seconds_for(5_000_000_000) > 300.0);
    assert!(wan.seconds_for(100_000_000) < 10.0);
}
