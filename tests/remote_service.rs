//! End-to-end remote visualization over a real loopback TCP server: the
//! served frames must be bit-identical to locally extracted ones, a
//! `ViewerSession` must run unmodified over the network source, and
//! concurrent clients must share the server's extraction cache.

use accelviz::beam::distribution::Distribution;
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::octree::sorted_store::PartitionedData;
use accelviz::serve::{Client, FrameServer, RemoteFrames, ServeError, ServerConfig};
use std::sync::Arc;

/// Deterministic beam snapshots: the same seeds give the server and the
/// local reference byte-identical partitioned stores.
fn stores(n: usize, particles: usize) -> Vec<PartitionedData> {
    (0..n)
        .map(|i| {
            let ps = Distribution::default_beam().sample(particles, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect()
}

#[test]
fn served_frames_match_local_extraction_bit_for_bit() {
    let config = ServerConfig::default();
    let server = FrameServer::spawn_loopback(stores(2, 2_000), config).unwrap();
    let local = stores(2, 2_000);

    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.frame_count(), 2);

    let catalog = client.list_frames().unwrap();
    assert_eq!(catalog.len(), 2);
    assert_eq!(catalog[1].frame, 1);
    assert_eq!(catalog[0].particles, 2_000);

    // Two frames at two thresholds each: every served frame must equal
    // the one extracted locally from the same store.
    for (frame_idx, data) in local.iter().enumerate() {
        for budget in [300usize, 1_200] {
            let threshold = threshold_for_budget(data, budget);
            let (served, metrics) = client.fetch(frame_idx as u32, threshold).unwrap();
            let reference =
                HybridFrame::from_partition(data, frame_idx, threshold, config.volume_dims);
            assert_eq!(served, reference, "frame {frame_idx} at budget {budget}");
            assert!(metrics.wire_bytes > 0);
            assert!(metrics.seconds > 0.0);
        }
    }

    // Refetching a (frame, threshold) pair hits the server's cache.
    let t = threshold_for_budget(&local[0], 300);
    client.fetch(0, t).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.cache_hits >= 1, "repeat fetch must hit: {stats:?}");
    assert_eq!(stats.frames_served, 5);
    assert!(stats.bytes_sent > 0);
    assert_eq!(stats.latency.total(), stats.requests);

    server.shutdown();
}

#[test]
fn viewer_session_runs_unmodified_over_the_network() {
    let config = ServerConfig::default();
    let server = FrameServer::spawn_loopback(stores(3, 1_500), config).unwrap();
    let local = stores(3, 1_500);
    let threshold = threshold_for_budget(&local[0], 500);

    let client = Client::connect(server.addr()).unwrap();
    let remote = RemoteFrames::new(client, threshold, 8);
    let mut session = ViewerSession::open_with(Box::new(remote));
    assert_eq!(session.frame_count(), 3);

    // Step to a cold frame: the load pays real wire time.
    let first = session.apply(SessionOp::StepTo(2));
    assert!(
        first.io_seconds > 0.0,
        "cold remote frame pays transfer time"
    );
    assert!(!first.failed);
    assert_eq!(session.current(), 2);

    // The remote session shows exactly the frame a local session would.
    let reference = HybridFrame::from_partition(&local[2], 2, threshold, config.volume_dims);
    assert_eq!(*session.frame(), reference);

    // Revisit: client-side resident set makes it free, like the local cache.
    let again = session.apply(SessionOp::StepTo(2));
    assert_eq!(again.io_seconds, 0.0, "revisited remote frame is resident");

    // Boundary edits still never reprocess, locally or remotely.
    let cost = session.apply(SessionOp::SetBoundary(0.01));
    assert!(!cost.reprocessed);

    server.shutdown();
}

#[test]
fn out_of_range_frame_is_an_error_reply_not_a_dead_connection() {
    let server = FrameServer::spawn_loopback(stores(1, 800), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    match client.fetch(5, 0.5) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, accelviz::serve::protocol::ERR_NO_SUCH_FRAME);
            assert!(message.contains('5'), "{message}");
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    // The connection survives the error and keeps serving.
    let (frame, _) = client.fetch(0, f64::INFINITY).unwrap();
    assert_eq!(frame.step, 0);

    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_extraction_cache() {
    let config = ServerConfig::default();
    let server = FrameServer::spawn_loopback(stores(2, 1_200), config).unwrap();
    let local = stores(2, 1_200);
    let thresholds: Vec<f64> = [300usize, 900]
        .iter()
        .map(|&b| threshold_for_budget(&local[0], b))
        .collect();
    let addr = server.addr();

    // N >= 4 clients all request the same overlapping (frame, threshold)
    // pairs; every client must see identical frames.
    let n_clients = 5;
    let workers: Vec<_> = (0..n_clients)
        .map(|_| {
            let thresholds = thresholds.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut fetched = Vec::new();
                for frame in 0..2u32 {
                    for &t in &thresholds {
                        let (f, _) = client.fetch(frame, t).unwrap();
                        fetched.push(f);
                    }
                }
                fetched
            })
        })
        .collect();

    let per_client: Vec<Vec<HybridFrame>> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    for other in &per_client[1..] {
        assert_eq!(
            &per_client[0], other,
            "all clients must decode identical frames"
        );
    }

    // 5 clients x 4 pairs, only 4 distinct extractions: the shared cache
    // must have absorbed the overlap.
    let stats = server.stats();
    assert_eq!(stats.frames_served, (n_clients * 4) as u64);
    assert_eq!(stats.cache_misses, 4, "one extraction per distinct pair");
    assert_eq!(stats.cache_hits, (n_clients * 4 - 4) as u64);
    assert!(stats.cache_hits > 0);

    // The served frames also match a local reference extraction.
    let reference = HybridFrame::from_partition(&local[0], 0, thresholds[0], config.volume_dims);
    assert_eq!(per_client[0][0], reference);

    server.shutdown();
}

#[test]
fn stats_counters_are_shared_across_connections() {
    let server = FrameServer::spawn_loopback(stores(1, 800), ServerConfig::default()).unwrap();
    let t = 0.25;
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.fetch(0, t).unwrap();
    b.fetch(0, t).unwrap(); // second connection, same pair: a cache hit
    let stats = b.stats().unwrap();
    assert_eq!(stats.frames_served, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    // 2 hellos + 2 fetches; the snapshot is taken before the stats
    // request itself is counted.
    assert_eq!(stats.requests, 4);
    drop(a);
    drop(b);
    server.shutdown();
}

#[test]
fn remote_source_shares_frames_via_arc() {
    // The Arc<HybridFrame> contract of FrameSource: repeated loads of a
    // resident frame hand back the same allocation.
    let server = FrameServer::spawn_loopback(stores(1, 600), ServerConfig::default()).unwrap();
    let client = Client::connect(server.addr()).unwrap();
    let mut remote = RemoteFrames::new(client, f64::INFINITY, 2);
    use accelviz::core::viewer::FrameSource;
    let (first, load) = remote.load(0).unwrap();
    assert!(!load.cache_hit);
    let (second, load) = remote.load(0).unwrap();
    assert!(load.cache_hit);
    assert!(Arc::ptr_eq(&first, &second));
    server.shutdown();
}
