//! Time-varying field-line animation (§3.4, Figure 8's workflow): capture
//! the driven cavity's E field at several time steps, pre-integrate field
//! lines for each step in parallel, render an animation filmstrip, and
//! report the storage economics of keeping lines instead of fields.
//!
//! Run: `cargo run --release --example field_animation`

use accelviz::core::scene::{render_line_set, LineRepresentation};
use accelviz::emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz::emsim::energy::energy_in_z_range;
use accelviz::emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz::emsim::sample::{FieldKind, FieldSampler, VectorField3};
use accelviz::fieldlines::integrate::TraceParams;
use accelviz::fieldlines::seeding::SeedingParams;
use accelviz::fieldlines::style::LineStyle;
use accelviz::fieldlines::temporal::precompute_animation;
use accelviz::math::Rgba;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::image::write_ppm;
use std::path::PathBuf;

fn main() {
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 14));
    let len = sim.spec().geometry.spec.total_length();

    // Capture the field at regular intervals while the RF fills the
    // structure (Figure 8's selected time steps).
    println!("running the 3-cell structure and capturing 6 time steps…");
    sim.run(200);
    let mut fields = Vec::new();
    let mut step_labels = Vec::new();
    for _ in 0..6 {
        sim.run(150);
        fields.push(FieldSampler::capture(&sim, FieldKind::Electric));
        step_labels.push(sim.steps());
        println!(
            "  step {:5}: far-cell energy {:.3e}",
            sim.steps(),
            energy_in_z_range(&sim, 2.0 * len / 3.0, len)
        );
    }

    // Parallel pre-integration across the captured steps.
    let max_mag = fields.iter().map(|f| f.max_magnitude()).fold(0.0, f64::max);
    let params = SeedingParams {
        n_lines: 250,
        trace: TraceParams {
            step: 0.04,
            max_steps: 250,
            min_magnitude: 1e-6 * max_mag,
            bidirectional: true,
        },
        seed: 5,
        min_magnitude_frac: 1e-3,
    };
    let t0 = std::time::Instant::now();
    let animation = precompute_animation(&fields, &params);
    println!(
        "pre-integrated {} steps x ~{} lines in {:.2} s",
        animation.len(),
        animation.steps[0].len(),
        t0.elapsed().as_secs_f64()
    );

    // Render one frame per step: the temporal evolution of the RF wave.
    let b = fields[0].bounds();
    let cam = Camera::orbit(b.center(), b.longest_edge() * 1.7, 0.9, 0.35, 1.0);
    let style = LineStyle::electric(max_mag);
    for (i, lines) in animation.steps.iter().enumerate() {
        let mut fb = Framebuffer::new(384, 384);
        render_line_set(
            &mut fb,
            &cam,
            lines,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.012,
        );
        let path = PathBuf::from(format!("field_anim_step{:06}.ppm", step_labels[i]));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!("wrote {} ({} lines)", path.display(), lines.len());
    }

    // The storage argument for animation: many steps of lines fit where
    // few steps of raw fields would.
    println!(
        "animation storage: {:.2} MB for {} steps; at the paper's 1.6 M-element \
         mesh this saves {:.0}x over raw per-step fields ({:.1} MB each)",
        animation.total_bytes() as f64 / 1e6,
        animation.len(),
        animation.saving_factor(1_600_000),
        accelviz::emsim::io::snapshot_bytes(1_600_000) as f64 / 1e6
    );

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("wrote pipeline trace to {}", path.display());
    }
}
