//! Sharded remote visualization: one AVWF front door over two frame
//! servers, each owning half the catalog.
//!
//! A terascale run's frame catalog outgrows one server's memory and one
//! NIC long before it outgrows the wire format. This example spins up a
//! [`ShardedFrameService`] on loopback — two shard servers behind a
//! router, frame ownership decided by rendezvous hashing — and shows
//! that a completely ordinary [`Client`] session works unchanged
//! against it: same handshake, same catalog, same frames, while the
//! router's counters expose where each frame actually came from.
//!
//! Run: `cargo run --release --example sharded_viz`
//!
//! [`ShardedFrameService`]: accelviz::serve::ShardedFrameService
//! [`Client`]: accelviz::serve::Client

use accelviz::beam::distribution::Distribution;
use accelviz::core::shard::ShardSpec;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::serve::router::{
    CTR_ROUTER_CACHE_HITS, CTR_ROUTER_CACHE_MISSES, CTR_ROUTER_COALESCED, CTR_ROUTER_REQUESTS,
    CTR_ROUTER_UPSTREAM_FETCHES,
};
use accelviz::serve::stats::CTR_FRAMES_SERVED;
use accelviz::serve::{Client, RouterConfig, ServerConfig, ShardedFrameService};

fn main() {
    // Eight frames of a 50k-particle beam: the "catalog" to spread.
    let frames = 8usize;
    let data: Vec<_> = (0..frames)
        .map(|i| {
            let ps = Distribution::default_beam().sample(50_000, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect();

    // Who owns what is pure arithmetic — any router, client, or operator
    // can recompute the layout from the shard count alone.
    let spec = ShardSpec::new(2);
    println!("rendezvous layout for {frames} frames over 2 shards:");
    for (frame, owner) in spec.assignments(frames).iter().enumerate() {
        println!("  frame {frame} -> shard {owner}");
    }

    let service = ShardedFrameService::spawn_loopback(
        data,
        2,
        ServerConfig::default(),
        RouterConfig::default(),
    )
    .expect("spawn sharded service");
    println!(
        "\nsharded service on {} (2 shards behind it)",
        service.addr()
    );

    // An unmodified client session against the router: the shard layer
    // is invisible to the protocol.
    let mut client = Client::connect(service.addr()).expect("connect");
    let catalog = client.list_frames().expect("list");
    println!("merged catalog: {} frames", catalog.len());
    let mut wire_total = 0u64;
    for frame in 0..frames as u32 {
        let (got, metrics) = client.fetch(frame, f64::INFINITY).expect("fetch");
        wire_total += metrics.wire_bytes;
        println!(
            "  frame {frame}: {:>6} points, {:>8} wire bytes, {:.4} s (served by shard {})",
            got.points.len(),
            metrics.wire_bytes,
            metrics.seconds,
            spec.owner_of(frame)
        );
    }

    // Stats through the router are the sum of the shards; the router's
    // own registry shows the proxy's bookkeeping.
    let merged = client.stats().expect("stats");
    println!("\nmerged shard stats:\n  {}", merged.summary());
    for s in 0..service.shard_count() {
        println!(
            "  shard {s}: {} frames served",
            service.shard(s).metrics().counter(CTR_FRAMES_SERVED)
        );
    }
    let rm = service.router().metrics();
    println!(
        "router: {} requests, {} upstream fetches, {} cache hits / {} misses, {} coalesced",
        rm.counter(CTR_ROUTER_REQUESTS),
        rm.counter(CTR_ROUTER_UPSTREAM_FETCHES),
        rm.counter(CTR_ROUTER_CACHE_HITS),
        rm.counter(CTR_ROUTER_CACHE_MISSES),
        rm.counter(CTR_ROUTER_COALESCED),
    );
    println!(
        "session moved {:.2} MB over one connection; each shard only \
         extracted its own half of the catalog",
        wire_total as f64 / 1e6
    );
    service.shutdown();
}
