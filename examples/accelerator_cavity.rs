//! Electromagnetic cavity visualization: the full §3 workflow.
//!
//! Reproduces the workflow behind Figures 6–10: solve the time-domain
//! fields of a driven 3-cell linac structure, seed field lines with
//! density proportional to |E|, render them as self-orienting surfaces
//! (and the baselines), write an incremental-loading sequence, and report
//! the compact-storage saving.
//!
//! Run: `cargo run --release --example accelerator_cavity`

use accelviz::core::scene::{render_line_set, LineRepresentation};
use accelviz::emsim::cavity::{CavityGeometry, CavitySpec};
use accelviz::emsim::energy::total_energy;
use accelviz::emsim::fdtd::{FdtdSim, FdtdSpec};
use accelviz::emsim::sample::{FieldKind, FieldSampler, VectorField3};
use accelviz::fieldlines::compact::{compact_bytes, serialize_lines};
use accelviz::fieldlines::integrate::TraceParams;
use accelviz::fieldlines::line::FieldLine;
use accelviz::fieldlines::seeding::{density_correlation, seed_lines, SeedingParams};
use accelviz::fieldlines::style::LineStyle;
use accelviz::math::Rgba;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::image::write_ppm;
use std::path::PathBuf;

fn main() {
    // Solve the driven 3-cell structure to a ringing state.
    let geometry = CavityGeometry::new(CavitySpec::three_cell());
    let mut sim = FdtdSim::new(FdtdSpec::for_geometry(geometry, 16));
    println!(
        "3-cell structure: {:?} grid, {} vacuum elements, dt = {:.3e}",
        sim.dims(),
        sim.vacuum_cell_count(),
        sim.dt()
    );
    sim.run(800);
    println!(
        "ran {} steps, field energy {:.3e}",
        sim.steps(),
        total_energy(&sim)
    );

    // Capture E and seed field lines, density ∝ |E|.
    let field = FieldSampler::capture(&sim, FieldKind::Electric);
    let lines = seed_lines(
        &field,
        &SeedingParams {
            n_lines: 400,
            trace: TraceParams {
                step: 0.04,
                max_steps: 250,
                min_magnitude: 1e-6 * field.max_magnitude(),
                bidirectional: true,
            },
            seed: 3,
            min_magnitude_frac: 1e-3,
        },
    );
    println!(
        "seeded {} E-field lines; density-magnitude correlation r = {:.3}",
        lines.len(),
        density_correlation(&field, &lines, lines.len())
    );

    let bounds = field.bounds();
    let cam = Camera::orbit(bounds.center(), bounds.longest_edge() * 1.7, 0.9, 0.35, 1.0);
    let style = LineStyle::electric(field.max_magnitude());
    let all: Vec<FieldLine> = lines.iter().map(|sl| sl.line.clone()).collect();

    // Figure 6: the representation gallery.
    for (name, rep) in [
        ("lines", LineRepresentation::FlatLines),
        ("illuminated", LineRepresentation::Illuminated),
        ("streamtubes", LineRepresentation::Streamtubes),
        ("sos", LineRepresentation::SelfOrientingSurfaces),
        ("transparent", LineRepresentation::TransparentSos),
    ] {
        let mut fb = Framebuffer::new(512, 512);
        let stats = render_line_set(&mut fb, &cam, &all, rep, &style, 0.012);
        let path = PathBuf::from(format!("cavity_{name}.ppm"));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!(
            "wrote {} ({} triangles, {} fragments)",
            path.display(),
            stats.triangles,
            stats.fragments
        );
    }

    // Figures 7/10: incremental loading with magnitude styling.
    for frac in [0.1, 0.3, 1.0] {
        let prefix = ((all.len() as f64 * frac) as usize).max(1);
        let subset = &all[..prefix];
        let mut fb = Framebuffer::new(512, 512);
        render_line_set(
            &mut fb,
            &cam,
            subset,
            LineRepresentation::SelfOrientingSurfaces,
            &style,
            0.012,
        );
        let path = PathBuf::from(format!(
            "cavity_incremental_{:03}pct.ppm",
            (frac * 100.0) as u32
        ));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!("wrote {} ({prefix} lines)", path.display());
    }

    // §3.4: the compact-storage saving.
    let mut buf = Vec::new();
    serialize_lines(&mut buf, &all).expect("serialize");
    let elements = sim.vacuum_cell_count() as u64;
    let raw = accelviz::emsim::io::snapshot_bytes(elements);
    println!(
        "storage: raw E+B over {} elements = {:.2} MB; {} compact lines = {:.3} MB \
         (factor {:.2}x at this toy mesh scale)",
        elements,
        raw as f64 / 1e6,
        all.len(),
        compact_bytes(&all) as f64 / 1e6,
        raw as f64 / buf.len() as f64
    );
    println!(
        "at the paper's 1.6 M-element mesh these same lines would save \
         {:.0}x (paper reports ~25x at its line budget)",
        accelviz::fieldlines::compact::saving_factor(&all, 1_600_000)
    );

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("wrote pipeline trace to {}", path.display());
    }
}
