//! Self-healing sharded serving: kill a shard mid-session and watch the
//! viewer not notice.
//!
//! A terascale catalog spread over shards is only as available as its
//! least reliable node — unless every frame lives on more than one. This
//! example spins up a [`ShardedFrameService`] with three shards at
//! replication 2, fetches the whole catalog, then kills the primary
//! owner of frame 0 and fetches everything again: every frame still
//! arrives, byte-identical, because the router's circuit breaker ejects
//! the dead shard and the rendezvous replica list says who to ask
//! instead. Reinstating the shard resets its breaker and the session
//! carries on as if nothing happened.
//!
//! Run: `cargo run --release --example failover_viz`
//!
//! [`ShardedFrameService`]: accelviz::serve::ShardedFrameService

use accelviz::beam::distribution::Distribution;
use accelviz::core::shard::ShardSpec;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::serve::router::{
    CTR_ROUTER_BREAKER_FAST_FAILS, CTR_ROUTER_BREAKER_OPEN, CTR_ROUTER_REPLICA_FAILOVERS,
};
use accelviz::serve::{
    BreakerConfig, BreakerState, Client, RetryPolicy, RouterConfig, ServerConfig,
    ShardedFrameService,
};
use std::time::Duration;

fn main() {
    // Eight frames of a 40k-particle beam: the catalog to protect.
    let frames = 8usize;
    let data: Vec<_> = (0..frames)
        .map(|i| {
            let ps = Distribution::default_beam().sample(40_000, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect();

    // The replica layout is pure arithmetic: top-2 rendezvous scores per
    // frame. The first entry is the primary — identical to the old
    // single-owner layout — and the second is where the frame goes when
    // the primary dies.
    let spec = ShardSpec::new(3);
    println!("replica layout for {frames} frames over 3 shards (replication 2):");
    for frame in 0..frames as u32 {
        println!("  frame {frame} -> shards {:?}", spec.owners(frame, 2));
    }

    // A hair-trigger breaker and a fast upstream retry make the failover
    // visible in a short example; production defaults are gentler. The
    // 1-byte router cache forces every fetch to the shards — otherwise
    // the second pass would be absorbed by the router's FetchCache and
    // the outage would never reach the breaker at all.
    let service = ShardedFrameService::spawn_loopback_replicated(
        data,
        3,
        2,
        ServerConfig::default(),
        RouterConfig {
            cache_bytes: 1,
            upstream_retry: Some(RetryPolicy::fast(7)),
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_cooldown: Duration::from_secs(60),
            },
            ..RouterConfig::default()
        },
    )
    .expect("spawn replicated service");
    let mut service = service;
    println!(
        "\nsharded service on {} (3 shards behind it)",
        service.addr()
    );

    // Healthy pass: record every frame's bytes as the reference.
    let mut client = Client::connect(service.addr()).expect("connect");
    let reference: Vec<_> = (0..frames as u32)
        .map(|f| client.fetch(f, f64::INFINITY).expect("healthy fetch").0)
        .collect();
    println!("healthy pass: {} frames fetched", reference.len());

    // Kill the primary owner of frame 0, mid-session.
    let victim = spec.owner_of(0);
    service.kill_shard(victim);
    println!("\nkilled shard {victim} (primary owner of frame 0)");

    // Full second pass against the degraded service. Every frame must
    // still arrive — and match the healthy bytes exactly.
    for f in 0..frames as u32 {
        let (got, metrics) = client.fetch(f, f64::INFINITY).expect("degraded fetch");
        let matches = got == reference[f as usize];
        assert!(matches, "frame {f} changed bytes during failover");
        let owners = spec.owners(f, 2);
        let note = if owners[0] == victim {
            format!("failed over to shard {}", owners[1])
        } else {
            format!("served by shard {}", owners[0])
        };
        println!(
            "  frame {f}: {:>6} points in {:.4} s, bit-identical ({note})",
            got.points.len(),
            metrics.seconds
        );
    }

    let rm = service.router().metrics();
    println!(
        "\nrouter during the outage: breaker opened {} time(s), {} replica \
         failovers, {} fast-fails",
        rm.counter(CTR_ROUTER_BREAKER_OPEN),
        rm.counter(CTR_ROUTER_REPLICA_FAILOVERS),
        rm.counter(CTR_ROUTER_BREAKER_FAST_FAILS),
    );
    println!(
        "shard {victim} breaker state: {:?}",
        service.router().breaker_state(victim)
    );

    // Bring the shard back: reinstate respawns it from its slice and
    // resets the breaker, so traffic returns to the primary immediately.
    service.reinstate_shard(victim).expect("reinstate");
    assert_eq!(service.router().breaker_state(victim), BreakerState::Closed);
    let (got, _) = client.fetch(0, f64::INFINITY).expect("healed fetch");
    assert!(got == reference[0]);
    println!(
        "\nreinstated shard {victim}: breaker reset to {:?}, frame 0 served \
         from its primary again, still bit-identical",
        service.router().breaker_state(victim)
    );
    service.shutdown();
}
