//! Chaos session: the resilience layer under a seeded fault plan.
//!
//! Spins up a loopback frame server, then runs a viewer session whose
//! transport is wrapped in a `FaultyTransport` driven by a deterministic
//! `FaultPlan` — delays, mid-message disconnects, truncations, and bit
//! flips at scheduled byte offsets. The session should not notice: the
//! retry/reconnect machinery heals every injected fault and each frame
//! arrives bit-identical to a fault-free run.
//!
//! The run prints, per step, whether the frame was genuine or a
//! degraded fallback, then the fault/client/server counters that make
//! the recovery work visible, and finally the measured *no-fault
//! overhead* of the resilience layer (retry-enabled vs retry-disabled
//! fetch timing against a healthy server) — the number quoted in
//! EXPERIMENTS.md.
//!
//! Run: `cargo run --release --example chaos_session`
//! Seed override: `ACCELVIZ_CHAOS_SEED=31337 cargo run --release --example chaos_session`

use accelviz::beam::distribution::Distribution;
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::core::viewer::FrameSource;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::plots::PlotType;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::serve::client::{FaultyConnector, TcpConnector};
use accelviz::serve::stats::{CTR_HANDLER_PANICS, CTR_SHED_CONNECTIONS, CTR_SHED_EXTRACTIONS};
use accelviz::serve::{
    Client, ClientConfig, FaultPlan, FrameServer, RemoteFrames, RetryPolicy, ServerConfig,
};
use std::sync::Arc;
use std::time::Instant;

const FRAMES: usize = 5;

fn main() {
    let seed: u64 = std::env::var("ACCELVIZ_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806);

    // Five modest beam snapshots on the "simulation" side.
    let stores: Vec<_> = (0..FRAMES)
        .map(|i| {
            let ps = Distribution::default_beam().sample(2_000, i as u64 + 1);
            partition(&ps, PlotType::XYZ, BuildParams::default())
        })
        .collect();
    let server = FrameServer::spawn_loopback(stores, ServerConfig::default()).expect("bind");

    // Fault-free reference run — both the ground truth for bit-identity
    // and the reply-volume measurement that calibrates the chaos plan.
    let mut clean = Client::connect_with(server.addr(), ClientConfig::no_retry()).expect("connect");
    let mut reference = Vec::new();
    let mut reply_bytes = 0u64;
    for frame in 0..FRAMES as u32 {
        let (f, m) = clean.fetch(frame, f64::INFINITY).expect("clean fetch");
        reply_bytes += m.wire_bytes;
        reference.push(f);
    }
    drop(clean);

    // The chaos plan: 8 seeded faults spread over the session's reply
    // volume, guaranteed to include at least one delay, one disconnect,
    // and one truncation.
    let plan = FaultPlan::chaos(seed, 8, reply_bytes);
    println!(
        "chaos plan (seed {seed}, {} faults over {reply_bytes} reply bytes):",
        plan.events().len()
    );
    for e in plan.events() {
        println!("  {:?} at byte {:>8}: {:?}", e.direction, e.at_byte, e.kind);
    }

    let script = plan.script();
    let config = ClientConfig {
        retry: Some(RetryPolicy::fast(seed)),
        ..ClientConfig::default()
    };
    let connector = FaultyConnector::new(
        TcpConnector::new(server.addr(), &config).expect("resolve"),
        Arc::clone(&script),
    );
    let client = Client::connect_via(Box::new(connector), config).expect("chaos connect");
    let mut remote = RemoteFrames::new(client, f64::INFINITY, FRAMES);

    println!("\nsession under chaos:");
    let start = Instant::now();
    let mut identical = 0;
    for (i, want) in reference.iter().enumerate() {
        let (got, load) = remote.load(i).expect("chaos load");
        let verdict = if load.degraded {
            "DEGRADED (stale fallback)"
        } else if &*got == want {
            identical += 1;
            "ok, bit-identical to fault-free run"
        } else {
            "MISMATCH"
        };
        println!(
            "  frame {i}: {:>7} points in {:.4} s — {verdict}",
            got.points.len(),
            load.seconds
        );
    }
    let elapsed = start.elapsed();
    let cs = remote.client().client_stats();
    let fired = script.stats();
    println!(
        "\n{identical}/{FRAMES} frames bit-identical in {:.3} s despite {} injected faults",
        elapsed.as_secs_f64(),
        fired.total()
    );
    println!(
        "  faults fired : {} delays, {} disconnects, {} truncations, {} bit flips",
        fired.delays, fired.disconnects, fired.truncations, fired.bit_flips
    );
    println!(
        "  client healed: {} retries, {} reconnects, {} giveups",
        cs.retries, cs.reconnects, cs.giveups
    );
    println!(
        "  server side  : {} handler panics, {} shed connections, {} shed extractions",
        server.metrics().counter(CTR_HANDLER_PANICS),
        server.metrics().counter(CTR_SHED_CONNECTIONS),
        server.metrics().counter(CTR_SHED_EXTRACTIONS),
    );

    // Render the last (chaos-delivered) frame so the trace, if enabled,
    // covers the full pipeline.
    let mut session = ViewerSession::open_with(Box::new(remote));
    session.apply(SessionOp::StepTo(FRAMES - 1));
    let boundary = session.preprocessing_boundary();
    session.apply(SessionOp::SetBoundary(boundary));
    let mut fb = Framebuffer::new(128, 128);
    let scene = session.render(&mut fb);
    println!(
        "  rendered chaos-delivered frame: {} points drawn, {} volume samples",
        scene.points_drawn, scene.volume_samples
    );

    // What does resilience cost when nothing goes wrong? Fetch the same
    // (now cached) frame repeatedly with retries disabled vs enabled:
    // the delta is pure bookkeeping — the fault hooks are compiled out
    // of the plain transport path entirely.
    const ROUNDS: usize = 200;
    let mut plain = Client::connect_with(server.addr(), ClientConfig::no_retry()).expect("plain");
    let t = Instant::now();
    for _ in 0..ROUNDS {
        plain.fetch(0, f64::INFINITY).expect("plain fetch");
    }
    let plain_s = t.elapsed().as_secs_f64() / ROUNDS as f64;
    drop(plain);

    let mut armed = Client::connect(server.addr()).expect("armed");
    let t = Instant::now();
    for _ in 0..ROUNDS {
        armed.fetch(0, f64::INFINITY).expect("armed fetch");
    }
    let armed_s = t.elapsed().as_secs_f64() / ROUNDS as f64;

    println!("\nno-fault resilience overhead ({ROUNDS} warm fetches each):");
    println!("  retries disabled: {:.1} µs/fetch", plain_s * 1e6);
    println!("  retries enabled : {:.1} µs/fetch", armed_s * 1e6);
    println!(
        "  overhead        : {:+.1}% (retry state is consulted only on error paths)",
        100.0 * (armed_s - plain_s) / plain_s
    );

    server.shutdown();
    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("\nwrote pipeline trace to {}", path.display());
    }
}
