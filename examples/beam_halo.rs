//! Beam-halo study: the full §2 workflow over a time series.
//!
//! Reproduces the workflow behind Figures 1, 2, 4 and 5: run an intense,
//! mismatched beam through the FODO channel; partition each recorded step;
//! extract hybrid frames; render the four phase-space distributions, the
//! volume/points/combined decomposition, and a time-series filmstrip; and
//! step through frames with the viewer cache.
//!
//! Run: `cargo run --release --example beam_halo`

use accelviz::beam::diagnostics::{four_fold_symmetry, BeamDiagnostics};
use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::pipeline::{process_run, PipelineParams};
use accelviz::core::scene::{render_hybrid_frame, RenderMode};
use accelviz::core::transfer::TransferFunctionPair;
use accelviz::core::viewer::FrameCache;
use accelviz::math::Rgba;
use accelviz::octree::builder::BuildParams;
use accelviz::octree::plots::PlotType;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::image::write_ppm;
use accelviz::render::points::PointStyle;
use accelviz::render::volume::VolumeStyle;
use std::path::PathBuf;

fn main() {
    let n_particles = 40_000;
    let recorded_steps = 32;

    println!("simulating {n_particles} particles over {recorded_steps} recorded steps…");
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n_particles, 7));
    let series = sim.run(recorded_steps, 8);
    let d = BeamDiagnostics::of(&series.last().unwrap().particles);
    println!(
        "final step: rms ({:.2}, {:.2}) mm, emittance growth visible, halo fraction {:.4}, \
         4-fold symmetry {:.3}",
        d.rms_x * 1e3,
        d.rms_y * 1e3,
        d.halo_fraction,
        four_fold_symmetry(&series.last().unwrap().particles)
    );

    // Figure 2: the four distributions of one step, rendered side by side.
    let snap = &series[recorded_steps / 2];
    for plot in PlotType::FIGURE2 {
        let params = PipelineParams {
            plot,
            build: BuildParams {
                max_depth: 6,
                leaf_capacity: 256,
                gradient_refinement: None,
            },
            point_budget: n_particles / 10,
            volume_dims: [64, 64, 64],
        };
        let frames = process_run(std::slice::from_ref(snap), &params);
        let frame = &frames[0];
        let cam = Camera::orbit(
            frame.bounds.center(),
            frame.bounds.longest_edge() * 2.2,
            0.5,
            0.35,
            1.0,
        );
        let tfs = TransferFunctionPair::linked_at(0.04, 0.015);
        let mut fb = Framebuffer::new(384, 384);
        render_hybrid_frame(
            &mut fb,
            &cam,
            frame,
            &tfs,
            RenderMode::Hybrid,
            &VolumeStyle {
                steps: 64,
                ..Default::default()
            },
            &PointStyle::default(),
        );
        let path = PathBuf::from(format!("beam_halo_{}.ppm", plot.name()));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!(
            "wrote {} ({} halo points)",
            path.display(),
            frame.points.len()
        );
    }

    // Figure 4: decomposition of the combined image.
    let params = PipelineParams {
        plot: PlotType::XYZ,
        build: BuildParams {
            max_depth: 6,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
        point_budget: n_particles / 10,
        volume_dims: [64, 64, 64],
    };
    let frames = process_run(&series, &params);
    let frame = &frames[recorded_steps / 2];
    let cam = Camera::orbit(
        frame.bounds.center(),
        frame.bounds.longest_edge() * 2.2,
        0.5,
        0.35,
        1.0,
    );
    let tfs = TransferFunctionPair::linked_at(0.04, 0.015);
    for (suffix, mode) in [
        ("volume", RenderMode::VolumeOnly),
        ("combined", RenderMode::Hybrid),
        ("points", RenderMode::PointsOnly),
    ] {
        let mut fb = Framebuffer::new(384, 384);
        render_hybrid_frame(
            &mut fb,
            &cam,
            frame,
            &tfs,
            mode,
            &VolumeStyle {
                steps: 64,
                ..Default::default()
            },
            &PointStyle {
                color: Rgba::WHITE.with_alpha(0.9),
                ..Default::default()
            },
        );
        let path = PathBuf::from(format!("beam_halo_decomposition_{suffix}.ppm"));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!("wrote {}", path.display());
    }

    // Figure 5: a filmstrip down the beam axis.
    for idx in [0, recorded_steps / 4, recorded_steps / 2, recorded_steps] {
        let frame = &frames[idx];
        // Look straight down z, "the beam's axis", as in the paper.
        let mut cam = Camera::look_at(
            frame.bounds.center()
                + accelviz::math::Vec3::UNIT_Z * frame.bounds.longest_edge() * 2.5,
            frame.bounds.center(),
            1.0,
        );
        cam.up = accelviz::math::Vec3::UNIT_Y;
        let mut fb = Framebuffer::new(256, 256);
        render_hybrid_frame(
            &mut fb,
            &cam,
            frame,
            &tfs,
            RenderMode::Hybrid,
            &VolumeStyle {
                steps: 48,
                ..Default::default()
            },
            &PointStyle::default(),
        );
        let path = PathBuf::from(format!("beam_halo_step{idx:03}.ppm"));
        write_ppm(&fb, Rgba::BLACK, &path).expect("write image");
        println!("wrote {}", path.display());
    }

    // Viewer: step through the series with the paper's desktop model.
    let sizes: Vec<(u64, u64)> = frames
        .iter()
        .map(|f| (f.total_bytes(), f.volume_bytes()))
        .collect();
    let cache = FrameCache::paper_desktop(sizes);
    let cold: f64 = (0..frames.len()).map(|f| cache.step_to(f).seconds).sum();
    let warm: f64 = (0..frames.len()).map(|f| cache.step_to(f).seconds).sum();
    println!(
        "viewer model: cold pass {cold:.2} s over {} frames, warm pass {warm:.4} s \
         ({} resident)",
        frames.len(),
        cache.resident_count()
    );

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("wrote pipeline trace to {}", path.display());
    }
}
