//! Quickstart: simulate a small beam, build a hybrid representation, and
//! render it to `quickstart.ppm` — the whole §2 pipeline in ~40 lines.
//!
//! Run: `cargo run --release --example quickstart`

use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::scene::{render_hybrid_frame, RenderMode};
use accelviz::core::transfer::TransferFunctionPair;
use accelviz::math::Rgba;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::render::camera::Camera;
use accelviz::render::framebuffer::Framebuffer;
use accelviz::render::image::write_ppm;
use accelviz::render::points::PointStyle;
use accelviz::render::volume::VolumeStyle;

fn main() {
    // 1. Simulate: an intense, mismatched beam in a FODO quadrupole
    //    channel develops the low-density halo the hybrid method is for.
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(50_000, 42));
    for _ in 0..32 * 30 {
        sim.step();
    }
    let snapshot = sim.snapshot(30);
    println!(
        "simulated {} particles over 30 cells",
        snapshot.particles.len()
    );

    // 2. Partition: density-sorted octree (the expensive one-time step).
    let data = partition(
        &snapshot.particles,
        PlotType::XYZ,
        BuildParams {
            max_depth: 6,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
    );
    println!(
        "partitioned into {} leaves; particle file {:.1} MB",
        data.tree().leaf_count(),
        data.particle_file_bytes() as f64 / 1e6
    );

    // 3. Extract: keep the 4 000 lowest-density particles as points, bin
    //    everything into a 64³ volume texture.
    let threshold = threshold_for_budget(&data, 4_000);
    let frame = HybridFrame::from_partition(&data, 30, threshold, [64, 64, 64]);
    println!(
        "hybrid frame: {} halo points + 64³ volume = {:.2} MB ({:.1}x smaller than raw)",
        frame.points.len(),
        frame.total_bytes() as f64 / 1e6,
        frame.compression_factor()
    );

    // 4. Render: volume + points through the linked transfer functions.
    let camera = Camera::orbit(
        frame.bounds.center(),
        frame.bounds.longest_edge() * 2.2,
        0.6,
        0.3,
        1.0,
    );
    let tfs = TransferFunctionPair::linked_at(0.04, 0.015);
    let mut fb = Framebuffer::new(512, 512);
    let stats = render_hybrid_frame(
        &mut fb,
        &camera,
        &frame,
        &tfs,
        RenderMode::Hybrid,
        &VolumeStyle::default(),
        &PointStyle::default(),
    );
    println!(
        "rendered: {} volume samples, {} points drawn",
        stats.volume_samples, stats.points_drawn
    );

    let path = std::path::Path::new("quickstart.ppm");
    write_ppm(&fb, Rgba::BLACK, path).expect("write image");
    println!("wrote {}", path.display());

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("wrote pipeline trace to {}", path.display());
    }
}
