//! Remote visualization: why the hybrid representation makes desktop and
//! wide-area visualization practical (§2.1, §2.5).
//!
//! Builds successively tighter hybrid representations of one beam
//! snapshot and prints the transfer/load-time picture for each — the
//! file-size-vs-accuracy dial the paper gives the user.
//!
//! Run: `cargo run --release --example remote_viz`

use accelviz::beam::io::snapshot_bytes;
use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::remote::{TransferModel, TransferReport};
use accelviz::core::viewer::FrameCache;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;

fn main() {
    let n = 200_000usize;
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n, 9));
    for _ in 0..32 * 20 {
        sim.step();
    }
    let snapshot = sim.snapshot(20);
    let data = partition(
        &snapshot.particles,
        PlotType::XYZ,
        BuildParams { max_depth: 6, leaf_capacity: 256, gradient_refinement: None },
    );

    println!("one time step of {n} particles:");
    println!(
        "  raw dump           : {:10.2} MB",
        snapshot_bytes(n as u64) as f64 / 1e6
    );
    println!(
        "  partitioned (octree): {:10.2} MB (+{:.1}% node file, reusable for any threshold)",
        data.total_bytes() as f64 / 1e6,
        100.0 * data.node_file_bytes() as f64 / data.particle_file_bytes() as f64
    );

    let wan = TransferModel::wide_area();
    println!("\nthreshold dial (point budget → size → WAN transfer → disk load):");
    println!("{:>10} {:>12} {:>12} {:>12} {:>10}", "points", "size MB", "compression", "WAN s", "load s");
    for budget in [n, n / 5, n / 20, n / 100] {
        let t = threshold_for_budget(&data, budget);
        let frame = HybridFrame::from_partition(&data, 0, t, [64, 64, 64]);
        let bytes = frame.total_bytes();
        println!(
            "{:>10} {:>12.3} {:>11.1}x {:>12.2} {:>10.3}",
            frame.points.len(),
            bytes as f64 / 1e6,
            frame.compression_factor(),
            wan.seconds_for(bytes),
            bytes as f64 / 10.0e6, // the paper's ~10 MB/s desktop disk
        );
    }

    println!("\npaper-scale arithmetic (100 M particles):");
    for report in [
        TransferReport::new("raw 5 GB step", snapshot_bytes(100_000_000)),
        TransferReport::new("hybrid 100 MB", 100 << 20),
        TransferReport::new("hybrid 10 MB", 10 << 20),
    ] {
        println!(
            "  {:16}: {:9.1} MB → WAN {:8.1} s, LAN {:7.2} s",
            report.label,
            report.bytes as f64 / 1e6,
            report.wan_seconds,
            report.lan_seconds
        );
    }

    // The interactive session: a remote scientist steps through 20 frames
    // of 100 MB with a 1 GB frame cache.
    let cache = FrameCache::paper_desktop(vec![(100 << 20, 64 * 64 * 64); 20]);
    let cold: f64 = (0..20).map(|f| cache.step_to(f).seconds).sum();
    let warm: f64 = (10..20).map(|f| cache.step_to(f).seconds).sum();
    println!(
        "\nviewer session: cold pass over 20 frames {cold:.0} s; re-stepping the \
         resident 10 frames {warm:.4} s (instantaneous, as in §2.5)"
    );
}
