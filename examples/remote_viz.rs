//! Remote visualization: why the hybrid representation makes desktop and
//! wide-area visualization practical (§2.1, §2.5) — and the real frame
//! service that implements it.
//!
//! Builds successively tighter hybrid representations of one beam
//! snapshot and prints the transfer/load-time picture for each, then
//! spins up an actual `accelviz-serve` server on loopback, fetches the
//! same frames over TCP with a real client, and prints the *measured*
//! wire size and transfer time next to the analytic `TransferModel`
//! prediction.
//!
//! Run: `cargo run --release --example remote_viz`
//!
//! With `ACCELVIZ_TRACE=trace.json` set, the run also writes a Chrome
//! trace-event file covering the whole pipeline — partition, extraction,
//! wire transfer, and render spans — which opens directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>. See the "Reading a
//! trace" section of the README.

use accelviz::beam::io::snapshot_bytes;
use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::remote::{TransferModel, TransferReport};
use accelviz::core::session::{SessionOp, ViewerSession};
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::serve::{Client, FrameServer, RemoteFrames, ServerConfig};

fn main() {
    let n = 200_000usize;
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n, 9));
    for _ in 0..32 * 20 {
        sim.step();
    }
    let snapshot = sim.snapshot(20);
    let data = partition(
        &snapshot.particles,
        PlotType::XYZ,
        BuildParams {
            max_depth: 6,
            leaf_capacity: 256,
            gradient_refinement: None,
        },
    );

    println!("one time step of {n} particles:");
    println!(
        "  raw dump           : {:10.2} MB",
        snapshot_bytes(n as u64) as f64 / 1e6
    );
    println!(
        "  partitioned (octree): {:10.2} MB (+{:.1}% node file, reusable for any threshold)",
        data.total_bytes() as f64 / 1e6,
        100.0 * data.node_file_bytes() as f64 / data.particle_file_bytes() as f64
    );

    let wan = TransferModel::wide_area();
    println!("\nthreshold dial (point budget → size → WAN transfer → disk load):");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "points", "size MB", "compression", "WAN s", "load s"
    );
    let budgets = [n, n / 5, n / 20, n / 100];
    for budget in budgets {
        let t = threshold_for_budget(&data, budget);
        let frame = HybridFrame::from_partition(&data, 0, t, [64, 64, 64]);
        let bytes = frame.total_bytes();
        println!(
            "{:>10} {:>12.3} {:>11.1}x {:>12.2} {:>10.3}",
            frame.points.len(),
            bytes as f64 / 1e6,
            frame.compression_factor(),
            wan.seconds_for(bytes),
            bytes as f64 / 10.0e6, // the paper's ~10 MB/s desktop disk
        );
    }

    println!("\npaper-scale arithmetic (100 M particles):");
    for report in [
        TransferReport::new("raw 5 GB step", snapshot_bytes(100_000_000)),
        TransferReport::new("hybrid 100 MB", 100 << 20),
        TransferReport::new("hybrid 10 MB", 10 << 20),
    ] {
        println!(
            "  {:16}: {:9.1} MB → WAN {:8.1} s, LAN {:7.2} s",
            report.label,
            report.bytes as f64 / 1e6,
            report.wan_seconds,
            report.lan_seconds
        );
    }

    // Now the served version of the same story: the partitioned store
    // stays on the "simulation" side, and a real TCP client pulls hybrid
    // frames at whatever threshold the remote scientist dials.
    let config = ServerConfig {
        volume_dims: [64, 64, 64],
        ..Default::default()
    };
    let thresholds: Vec<f64> = budgets
        .iter()
        .map(|&b| threshold_for_budget(&data, b))
        .collect();
    let server = FrameServer::spawn_loopback(vec![data], config).expect("loopback bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let lan = TransferModel::local_area();

    println!("\nserved over TCP (loopback) — measured vs TransferModel prediction:");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "points", "wire MB", "measured s", "LAN model s", "WAN model s"
    );
    for &t in &thresholds {
        let (frame, metrics) = client.fetch(0, t).expect("fetch");
        println!(
            "{:>10} {:>12.3} {:>14.4} {:>14.4} {:>14.2}",
            frame.points.len(),
            metrics.wire_bytes as f64 / 1e6,
            metrics.seconds,
            lan.seconds_for(metrics.wire_bytes),
            wan.seconds_for(metrics.wire_bytes),
        );
    }
    println!(
        "  (loopback beats the modeled LAN: the models predict real links, \
         the measurement validates the encode/transfer/decode path)"
    );

    // Refetch the tightest frame: the server's extraction cache answers.
    let (_, warm) = client
        .fetch(0, *thresholds.last().unwrap())
        .expect("refetch");
    println!(
        "  warm refetch of the tightest frame: {:.4} s (server cache hit)",
        warm.seconds
    );
    let stats = client.stats().expect("stats");
    println!("\nserver stats after this session:\n  {}", stats.summary());

    // A viewer session over the network source — the same session code
    // the local viewer runs, with frames that now arrive over TCP.
    use accelviz::core::viewer::FrameSource;
    let remote_client = Client::connect(server.addr()).expect("connect");
    let mut remote = RemoteFrames::new(remote_client, thresholds[1], 8);
    let (_, cold) = remote.load(0).expect("cold remote load");
    let mut session = ViewerSession::open_with(Box::new(remote));
    let warm = session.apply(SessionOp::StepTo(0));
    println!(
        "\nremote viewer session: first frame {:.4} s over the wire \
         ({} B), re-step {:.4} s ({} points on screen)",
        cold.seconds,
        cold.bytes_loaded,
        warm.io_seconds,
        session.frame().points.len()
    );
    // Render the remote frame so a captured trace covers the full
    // pipeline: partition → extract → wire → render.
    let mut fb = accelviz::render::framebuffer::Framebuffer::new(256, 256);
    let scene = session.render(&mut fb);
    println!(
        "  rendered remotely-fetched frame: {} volume samples, {} points drawn",
        scene.volume_samples, scene.points_drawn
    );
    server.shutdown();

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("\nwrote pipeline trace to {}", path.display());
        println!("{}", accelviz::trace::summary());
    }
}
