//! Progressive streaming: time-to-first-pixel on the AVWF v2 wire.
//!
//! A full-fidelity hybrid frame of a large beam snapshot is tens of
//! megabytes; over a wide-area link that is seconds of blank screen. The
//! progressive wire sends the same frame as a density-ordered
//! coarse-to-fine chunk sequence instead: the first chunk alone — a
//! low-depth volume grid plus the brightest halo points — decodes to a
//! renderable partial frame, and every following chunk splices more
//! refinement into the resident frame until it is bit-identical to a
//! full fetch.
//!
//! This example builds one snapshot, walks the chunk plan offline to
//! show what each refinement step adds, then serves the frame over
//! loopback and compares a progressive session against a full fetch:
//! wire bytes until *something* is on screen, versus wire bytes until
//! everything is.
//!
//! Run: `cargo run --release --example progressive_viz`
//!
//! Knobs: `ACCELVIZ_LOD_BUDGET` overrides the chunk byte budget when the
//! request leaves it at 0 (see OPERATIONS.md).

use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
use accelviz::core::hybrid::HybridFrame;
use accelviz::core::remote::TransferModel;
use accelviz::core::viewer::FrameSource;
use accelviz::octree::builder::{partition, BuildParams};
use accelviz::octree::extraction::threshold_for_budget;
use accelviz::octree::plots::PlotType;
use accelviz::serve::lod::{plan_frame_chunks, ProgressiveAssembler};
use accelviz::serve::{Client, FrameServer, RemoteFrames, ServerConfig};

fn main() {
    let n = 200_000usize;
    let mut sim = BeamSimulation::new(BeamConfig::halo_study(n, 9));
    for _ in 0..32 * 10 {
        sim.step();
    }
    let snapshot = sim.snapshot(10);
    let data = partition(&snapshot.particles, PlotType::XYZ, BuildParams::default());
    let threshold = threshold_for_budget(&data, n / 5);
    let dims = [64, 64, 64];
    let frame = HybridFrame::from_partition(&data, 0, threshold, dims);
    println!(
        "snapshot of {n} particles → hybrid frame: {} halo points, {:?} grid, {:.2} MB resident",
        frame.points.len(),
        dims,
        frame.total_bytes() as f64 / 1e6
    );

    // The chunk plan, walked offline: each record splices into the
    // assembler exactly as it would arriving over TCP.
    let budget = 64 * 1024u64;
    let records = plan_frame_chunks(&frame, budget);
    let wan = TransferModel::wide_area();
    println!(
        "\nchunk plan at a {} KiB budget ({} records):",
        budget / 1024,
        records.len()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>12}",
        "seq", "bytes", "points", "cumulative MB", "WAN s so far"
    );
    let mut asm = ProgressiveAssembler::new();
    let mut cumulative = 0u64;
    for (seq, record) in records.iter().enumerate() {
        let done = asm.accept(record).expect("record applies");
        cumulative += record.len() as u64;
        let resident = if done {
            frame.points.len()
        } else {
            asm.points_resident()
        };
        // Only print the head, a middle sample, and the tail — the full
        // plan can run to hundreds of records.
        if seq < 3 || seq + 2 >= records.len() || seq % (records.len() / 4).max(1) == 0 {
            println!(
                "{:>6} {:>10} {:>12} {:>14.3} {:>12.2}{}",
                seq,
                record.len(),
                resident,
                cumulative as f64 / 1e6,
                wan.seconds_for(cumulative),
                if seq == 0 {
                    "   ← first pixels: coarse grid + brightest points"
                } else if done {
                    "   ← bit-identical to the full frame"
                } else {
                    ""
                }
            );
        }
        if done {
            assert_eq!(asm.into_frame().expect("complete"), frame);
            break;
        }
    }
    println!(
        "  first chunk is {:.1}% of the stream — the viewer has a usable \
         picture after {:.2} modeled WAN seconds instead of {:.2}",
        100.0 * records[0].len() as f64 / cumulative as f64,
        wan.seconds_for(records[0].len() as u64),
        wan.seconds_for(cumulative)
    );

    // The same story over a real socket: serve the store on loopback and
    // fetch both ways.
    let config = ServerConfig {
        volume_dims: dims,
        ..Default::default()
    };
    let server = FrameServer::spawn_loopback(vec![data], config).expect("loopback bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (full, full_metrics) = client.fetch(0, threshold).expect("full fetch");
    let (refined, prog_metrics) = client
        .fetch_progressive(0, threshold, budget)
        .expect("progressive fetch");
    assert_eq!(refined, full, "refined frame must be bit-identical");
    println!(
        "\nover TCP: full fetch {:.2} MB in {:.4} s; progressive {:.2} MB \
         in {:.4} s, refined frame bit-identical",
        full_metrics.wire_bytes as f64 / 1e6,
        full_metrics.seconds,
        prog_metrics.wire_bytes as f64 / 1e6,
        prog_metrics.seconds,
    );

    // And as a viewer session source: `RemoteFrames::progressive` makes
    // every cold load stream chunks, degrading to a *partial* frame of
    // the requested step if the link dies mid-refinement.
    let session_client = Client::connect(server.addr()).expect("connect");
    let mut remote = RemoteFrames::new(session_client, threshold, 1).progressive(budget);
    let (shown, load) = remote.load(0).expect("progressive load");
    println!(
        "session load: {} points on screen, degraded={}, partial={}, {:.2} MB over the wire",
        shown.points.len(),
        load.degraded,
        load.partial,
        load.bytes_loaded as f64 / 1e6
    );
    server.shutdown();

    if let Some(path) = accelviz::trace::flush().expect("trace write") {
        println!("\nwrote pipeline trace to {}", path.display());
    }
}
