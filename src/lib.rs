//! # accelviz
//!
//! A full reproduction of *"Advanced Visualization Technology for Terascale
//! Particle Accelerator Simulations"* (Ma, Schussman, Wilson, Ko, Qiang,
//! Ryne — SC 2002) as a Rust workspace. This facade crate re-exports every
//! subsystem so applications can depend on a single crate:
//!
//! - [`math`] — vectors, matrices, colors, statistics.
//! - [`beam`] — particle beam dynamics simulator (FODO channel with a
//!   particle-core space-charge model producing beam halos).
//! - [`octree`] — density-sorted octree partitioning of particle data and
//!   threshold extraction into hybrid representations (paper §2.3).
//! - [`emsim`] — time-domain electromagnetic solver on hexahedral meshes of
//!   multi-cell linac structures (paper §3 substrate).
//! - [`render`] — deterministic software renderer: volume ray casting,
//!   point splatting, textured triangle strips (stand-in for the GeForce-
//!   class hardware the paper uses).
//! - [`fieldlines`] — streamline integration, field-magnitude-proportional
//!   incremental seeding, and self-orienting surfaces (paper §3).
//! - [`core`] — the hybrid rendering pipeline, transfer functions, viewer
//!   frame cache, and remote-visualization model (paper §2).
//! - [`serve`] — the multi-client TCP frame service (§2.1's remote
//!   transfer made real), including the sharded scale-out layer: one
//!   router speaking the same protocol over N rendezvous-hashed shard
//!   servers ([`serve::router`]).
//! - [`store`] — compressed frame codecs (the wire's AVWF v2 encoding is
//!   built from them) and the out-of-core, memory-mapped run store that
//!   lets a viewer or server work through a run larger than RAM.
//! - [`trace`] — spans, counters, and Chrome trace-event export; set
//!   `ACCELVIZ_TRACE=trace.json` before running any example or benchmark
//!   to capture a whole-pipeline trace, then call [`trace::flush`] (the
//!   examples already do).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.
//!
//! # Quickstart
//!
//! The whole §2 pipeline — simulate, partition, extract, render:
//!
//! ```
//! use accelviz::beam::simulation::{BeamConfig, BeamSimulation};
//! use accelviz::core::hybrid::HybridFrame;
//! use accelviz::core::scene::{render_hybrid_frame, RenderMode};
//! use accelviz::core::transfer::TransferFunctionPair;
//! use accelviz::octree::builder::{partition, BuildParams};
//! use accelviz::octree::extraction::threshold_for_budget;
//! use accelviz::octree::plots::PlotType;
//! use accelviz::render::camera::Camera;
//! use accelviz::render::framebuffer::Framebuffer;
//! use accelviz::render::points::PointStyle;
//! use accelviz::render::volume::VolumeStyle;
//!
//! // A small beam, a few FODO cells.
//! let mut sim = BeamSimulation::new(BeamConfig::zero_current(2_000, 42));
//! for _ in 0..64 {
//!     sim.step();
//! }
//! let snapshot = sim.snapshot(1);
//!
//! // Partition into the density-sorted octree, extract a hybrid frame.
//! let data = partition(&snapshot.particles, PlotType::XYZ, BuildParams::default());
//! let threshold = threshold_for_budget(&data, 500);
//! let frame = HybridFrame::from_partition(&data, 1, threshold, [16, 16, 16]);
//! assert!(frame.points.len() <= 500);
//!
//! // Render volume + halo points through the linked transfer functions.
//! let camera = Camera::orbit(
//!     frame.bounds.center(),
//!     frame.bounds.longest_edge() * 2.2,
//!     0.5,
//!     0.3,
//!     1.0,
//! );
//! let mut fb = Framebuffer::new(64, 64);
//! let stats = render_hybrid_frame(
//!     &mut fb,
//!     &camera,
//!     &frame,
//!     &TransferFunctionPair::linked_at(0.05, 0.02),
//!     RenderMode::Hybrid,
//!     &VolumeStyle { steps: 16, ..Default::default() },
//!     &PointStyle::default(),
//! );
//! assert!(stats.volume_samples > 0);
//! ```

pub use accelviz_beam as beam;
pub use accelviz_core as core;
pub use accelviz_emsim as emsim;
pub use accelviz_fieldlines as fieldlines;
pub use accelviz_math as math;
pub use accelviz_octree as octree;
pub use accelviz_render as render;
pub use accelviz_serve as serve;
pub use accelviz_store as store;
pub use accelviz_trace as trace;
