//! Offline stand-in for the subset of the `rayon` 1.10 API this
//! workspace uses — now with **real parallelism**.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repo root). Work runs on a
//! lazily-created global work-stealing pool of
//! `available_parallelism()` threads (override: `RAYON_NUM_THREADS`);
//! see the `pool` module. The adapter layer mirrors rayon's producer model in
//! miniature: every entry point (`par_iter`, `par_chunks`,
//! `into_par_iter`, …) yields a [`Producer`] that knows its exact length
//! and can split at an index; terminal operations cut the producer into
//! `~4 × num_threads` contiguous pieces, run each piece as a pool job,
//! and recombine the per-piece results **in input order**, so `collect`
//! preserves ordering and `fold`/`reduce` follow rayon's
//! split-accumulator contract (fold produces one accumulator per piece,
//! reduce combines them left to right).
//!
//! Determinism: piece *boundaries* depend on the pool size, so — exactly
//! as with upstream rayon — `fold`/`reduce` are only deterministic
//! across pool sizes when the reduction is associative over the items.
//! Order-preserving operations (`collect`, `for_each` effects keyed by
//! item, `map`) are deterministic regardless of pool size. Swapping the
//! real rayon back in is a one-line change in the workspace manifest.

use std::sync::Arc;

mod pool;

pub use pool::{join, scope, Scope};

/// Number of worker threads in the global pool (callers use it to pick
/// chunk sizes). Honors `RAYON_NUM_THREADS` at first use.
pub fn current_num_threads() -> usize {
    pool::global().num_threads()
}

/// Contiguous pieces handed to the pool per worker thread; >1 so the
/// work-stealing deques can re-balance uneven pieces.
const CHUNKS_PER_THREAD: usize = 4;

/// A splittable, length-aware source of items — this shim's equivalent
/// of rayon's `Producer` plumbing. Terminal operations split producers
/// into contiguous pieces executed as pool jobs.
pub trait Producer: Send + Sized {
    /// Item produced.
    type Item: Send;
    /// Sequential iterator draining one piece.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Items remaining (chunked producers count chunks, not elements).
    fn len(&self) -> usize;
    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Drains this piece sequentially.
    fn into_seq(self) -> Self::SeqIter;
}

/// Splits `producer` into ordered pieces, runs `work` over each piece on
/// the pool, and returns the per-piece results in input order. The
/// backbone of every terminal operation.
fn run_chunks<P: Producer, R: Send>(producer: P, work: &(impl Fn(P) -> R + Sync)) -> Vec<R> {
    let n = producer.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    let k = threads.saturating_mul(CHUNKS_PER_THREAD).min(n);
    if threads <= 1 || k <= 1 {
        return vec![work(producer)];
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..k).map(|_| std::sync::Mutex::new(None)).collect();
    pool::scope(|s| {
        let mut rest = producer;
        let mut start = 0;
        for (j, slot) in slots.iter().enumerate() {
            let end = (j + 1) * n / k;
            let (piece, tail) = rest.split_at(end - start);
            rest = tail;
            start = end;
            s.spawn(move || {
                let r = work(piece);
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("pool piece completed without a result")
        })
        .collect()
}

/// A parallel iterator: a [`Producer`] plus the rayon adapter surface
/// used in this workspace.
pub struct Par<P>(P);

impl<P: Producer> Par<P> {
    /// Maps each item.
    pub fn map<R, F>(self, f: F) -> Par<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync,
    {
        Par(MapProducer {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Zips with another parallel iterator (stops at the shorter).
    pub fn zip<Q: Producer>(self, other: Par<Q>) -> Par<ZipProducer<P, Q>> {
        Par(ZipProducer {
            a: self.0,
            b: other.0,
        })
    }

    /// Pairs each item with its global index.
    pub fn enumerate(self) -> Par<EnumerateProducer<P>> {
        Par(EnumerateProducer {
            base: self.0,
            offset: 0,
        })
    }

    /// Keeps items passing the predicate (order among kept items is
    /// preserved). The filtered iterator reports its pre-filter length
    /// for splitting purposes; do not `zip`/`enumerate` after `filter`.
    pub fn filter<F>(self, f: F) -> Par<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        Par(FilterProducer {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Consumes every item on the pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        run_chunks(self.0, &|piece: P| piece.into_seq().for_each(&f));
    }

    /// Collects into any container, preserving input order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = run_chunks(self.0, &|piece: P| piece.into_seq().collect::<Vec<_>>());
        parts.into_iter().flatten().collect()
    }

    /// Sums the items (per-piece partial sums, combined in order).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let parts = run_chunks(self.0, &|piece: P| piece.into_seq().sum::<S>());
        parts.into_iter().sum()
    }

    /// Rayon-style fold: produce per-piece accumulators. Yields one
    /// accumulator per executed piece, in input order.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, P::Item) -> T + Sync,
    {
        let parts = run_chunks(self.0, &|piece: P| {
            piece.into_seq().fold(identity(), &fold_op)
        });
        Par(VecProducer { data: parts })
    }

    /// Rayon-style reduce: combine items starting from the identity.
    /// `op` must be associative for the result to be independent of the
    /// pool size (rayon's own contract).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let parts = run_chunks(self.0, &|piece: P| piece.into_seq().fold(identity(), &op));
        parts.into_iter().fold(identity(), &op)
    }
}

// ---- entry-point producers ------------------------------------------------

/// Shared-slice items (`par_iter`).
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Mutable-slice items (`par_iter_mut`).
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: l }, SliceMutProducer { slice: r })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Fixed-size shared chunks (`par_chunks`); length counts chunks.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Fixed-size mutable chunks (`par_chunks_mut`); length counts chunks.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Owned items (`into_par_iter` on ranges, vectors, …). The source is
/// materialized once up front so it can be split by index.
pub struct VecProducer<T> {
    data: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.data.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.data.split_off(index);
        (self, VecProducer { data: tail })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.data.into_iter()
    }
}

// ---- adapter producers ----------------------------------------------------

/// See [`Par::map`].
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P: Producer, R: Send, F: Fn(P::Item) -> R + Send + Sync> Producer for MapProducer<P, F> {
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: Arc::clone(&self.f),
            },
            MapProducer { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        MapSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`MapProducer`].
pub struct MapSeq<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> Iterator for MapSeq<I, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
}

/// See [`Par::filter`].
pub struct FilterProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P: Producer, F: Fn(&P::Item) -> bool + Send + Sync> Producer for FilterProducer<P, F> {
    type Item = P::Item;
    type SeqIter = FilterSeq<P::SeqIter, F>;
    /// Pre-filter length: an upper bound used only for splitting.
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterProducer {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterProducer { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        FilterSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`FilterProducer`].
pub struct FilterSeq<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterSeq<I, F> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.base.find(|x| (self.f)(x))
    }
}

/// See [`Par::enumerate`].
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq {
            base: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// Sequential side of [`EnumerateProducer`].
pub struct EnumerateSeq<I> {
    base: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<(usize, I::Item)> {
        let x = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

/// See [`Par::zip`].
pub struct ZipProducer<P, Q> {
    a: P,
    b: Q,
}

impl<P: Producer, Q: Producer> Producer for ZipProducer<P, Q> {
    type Item = (P::Item, Q::Item);
    type SeqIter = std::iter::Zip<P::SeqIter, Q::SeqIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

// ---- entry-point traits ---------------------------------------------------

/// Owned conversion into a parallel iterator (ranges, vectors, …).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Producer the conversion yields.
    type Producer: Producer<Item = Self::Item>;
    /// Converts into a [`Par`].
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<T: IntoIterator> IntoParallelIterator for T
where
    T::Item: Send,
{
    type Item = T::Item;
    type Producer = VecProducer<T::Item>;
    fn into_par_iter(self) -> Par<VecProducer<T::Item>> {
        Par(VecProducer {
            data: self.into_iter().collect(),
        })
    }
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> Par<SliceProducer<'_, T>>;
    /// Parallel fixed-size chunks.
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceProducer<'_, T>> {
        Par(SliceProducer { slice: self })
    }
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par(ChunksProducer {
            slice: self,
            size: chunk_size,
        })
    }
}

/// Mutable-slice entry points (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutable iteration.
    fn par_iter_mut(&mut self) -> Par<SliceMutProducer<'_, T>>;
    /// Parallel mutable fixed-size chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceMutProducer<'_, T>> {
        Par(SliceMutProducer { slice: self })
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par(ChunksMutProducer {
            slice: self,
            size: chunk_size,
        })
    }
}

/// The rayon prelude: everything call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<i64> = (0..100i64).into_par_iter().map(|x| x * x).collect();
        let s: Vec<i64> = (0..100i64).map(|x| x * x).collect();
        assert_eq!(v, s);
    }

    #[test]
    fn fold_reduce_contract() {
        let data: Vec<u32> = (1..=10).collect();
        let total = data
            .par_chunks(3)
            .fold(|| 0u32, |acc, c| acc + c.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }

    #[test]
    fn zip_enumerate_for_each_mutates() {
        let mut a = vec![0u32; 8];
        let b = [2u32; 8];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(a, vec![2u32; 8]);
        let mut rows = vec![0usize; 6];
        rows.par_chunks_mut(2).enumerate().for_each(|(i, row)| {
            for r in row {
                *r = i;
            }
        });
        assert_eq!(rows, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn sum_over_mapped_chunks() {
        let mut px = [1u8; 10];
        let total: u64 = px.par_chunks_mut(4).map(|c| c.len() as u64).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn large_collect_preserves_input_order() {
        let n = 100_000u64;
        let v: Vec<u64> = (0..n).into_par_iter().map(|x| x.wrapping_mul(31)).collect();
        assert_eq!(v.len(), n as usize);
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i as u64) * 31));
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let data: Vec<u64> = (0..50_000).collect();
        let sum = AtomicU64::new(0);
        data.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 50_000 * 49_999 / 2);
    }

    #[test]
    fn filter_keeps_order_among_kept_items() {
        let v: Vec<u32> = (0..10_000u32)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .collect();
        let s: Vec<u32> = (0..10_000u32).filter(|x| x % 7 == 0).collect();
        assert_eq!(v, s);
    }

    #[test]
    fn enumerate_indices_are_global_after_splitting() {
        let data = vec![3u8; 10_001];
        let pairs: Vec<(usize, u8)> = data.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert!(pairs
            .iter()
            .enumerate()
            .all(|(i, &(j, x))| i == j && x == 3));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(v.is_empty());
        let empty: [f32; 0] = [];
        let total = empty
            .par_chunks(16)
            .fold(|| 0.0f32, |a, c| a + c.iter().sum::<f32>())
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        // Outer par over rows, inner par inside each row's closure: every
        // worker can end up waiting on an inner scope simultaneously.
        let rows: Vec<u64> = (0..32u64)
            .into_par_iter()
            .map(|r| (0..1_000u64).into_par_iter().map(|x| x + r).sum::<u64>())
            .collect();
        for (r, &v) in rows.iter().enumerate() {
            assert_eq!(v, 1_000 * 999 / 2 + 1_000 * r as u64);
        }
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }
}
