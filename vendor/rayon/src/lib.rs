//! Offline stand-in for the subset of the `rayon` 1.10 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repo root). Every adapter
//! here executes **sequentially** on the calling thread: `par_iter` et
//! al. are plain iterators wrapped in [`Par`], and `fold`/`reduce`
//! follow rayon's split-accumulator contract (fold produces
//! accumulators, reduce combines them) so call sites behave
//! identically, just without the parallel speedup. Swapping the real
//! rayon back in is a one-line change in the workspace manifest.

/// Number of worker threads rayon would use — here the machine's
/// available parallelism (callers use it to pick chunk sizes).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// exposing the rayon adapter surface used in this workspace.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// Maps each item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Zips with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Keeps items passing the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    /// Consumes every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collects into any container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Rayon-style fold: produce per-split accumulators. Sequentially
    /// there is exactly one split, so this yields a single accumulator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce: combine accumulators starting from the
    /// identity.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

/// Owned conversion into a parallel iterator (ranges, vectors, …).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Converts into a [`Par`].
    fn into_par_iter(self) -> Par<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type SeqIter = T::IntoIter;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    /// Parallel fixed-size chunks.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

/// Mutable-slice entry points (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T> {
    /// Parallel mutable iteration.
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    /// Parallel mutable fixed-size chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

/// The rayon prelude: everything call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<i64> = (0..100i64).into_par_iter().map(|x| x * x).collect();
        let s: Vec<i64> = (0..100i64).map(|x| x * x).collect();
        assert_eq!(v, s);
    }

    #[test]
    fn fold_reduce_contract() {
        let data: Vec<u32> = (1..=10).collect();
        let total = data
            .par_chunks(3)
            .fold(|| 0u32, |acc, c| acc + c.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }

    #[test]
    fn zip_enumerate_for_each_mutates() {
        let mut a = vec![0u32; 8];
        let b = [2u32; 8];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(a, vec![2u32; 8]);
        let mut rows = vec![0usize; 6];
        rows.par_chunks_mut(2).enumerate().for_each(|(i, row)| {
            for r in row {
                *r = i;
            }
        });
        assert_eq!(rows, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn sum_over_mapped_chunks() {
        let mut px = [1u8; 10];
        let total: u64 = px.par_chunks_mut(4).map(|c| c.len() as u64).sum();
        assert_eq!(total, 10);
    }
}
