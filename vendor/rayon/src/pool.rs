//! The work-stealing thread pool behind the parallel adapters.
//!
//! One global pool is created lazily on first use with
//! `available_parallelism()` workers, overridable through the
//! `RAYON_NUM_THREADS` environment variable (read once, at pool
//! creation). Each worker owns a deque: jobs spawned from inside the
//! pool go to the spawning worker's deque and are popped LIFO for
//! locality; jobs spawned from outside land on a shared injector; idle
//! workers steal FIFO from the injector and from their peers.
//!
//! Blocking is cooperative: a thread waiting for a [`scope`] to finish
//! does not park — it helps by executing pending jobs, so nested
//! parallelism (a parallel iterator inside a pool job) cannot deadlock
//! even when every worker is simultaneously waiting on an inner scope.
//! To keep help-stacks bounded, a waiter only executes jobs **belonging
//! to the scope it is waiting on** (jobs are tagged): inlining an
//! unrelated stolen job could itself block and inline another, chaining
//! arbitrarily many frames onto one stack. Restricted to own-scope jobs,
//! inline depth tracks the computation's nesting depth, and progress is
//! still guaranteed — a scope's queued jobs are always runnable by its
//! own waiter, and non-queued jobs are being executed by some thread
//! that is either computing or recursively waiting on a deeper scope.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

/// A queued job together with the identity of the scope that spawned it
/// (the `Arc<ScopeState>` address), so scope waiters can help with
/// exactly their own jobs.
struct Tagged {
    tag: usize,
    job: Job,
}

/// Locks ignoring poison: a panicking job must not wedge the pool, and
/// every queue operation is exception-safe on its own.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Removes one job with the given tag: the newest (back) when
/// `newest_first` — the own-deque case, mirroring LIFO pops — else the
/// oldest (front), mirroring FIFO steals.
fn take_tagged(q: &Mutex<VecDeque<Tagged>>, tag: usize, newest_first: bool) -> Option<Job> {
    let mut g = lock(q);
    let pos = if newest_first {
        g.iter().rposition(|t| t.tag == tag)
    } else {
        g.iter().position(|t| t.tag == tag)
    };
    pos.and_then(|i| g.remove(i)).map(|t| t.job)
}

struct Shared {
    /// Jobs pushed from threads outside the pool.
    injector: Mutex<VecDeque<Tagged>>,
    /// One deque per worker; owners pop LIFO, thieves steal FIFO.
    locals: Vec<Mutex<VecDeque<Tagged>>>,
    /// Idle workers and waiting scopes sleep here (paired with the
    /// `injector` mutex).
    sleep: Condvar,
}

impl Shared {
    /// Takes one pending job from anywhere: the calling worker's own
    /// deque first (LIFO), then the injector, then the peers (FIFO).
    fn find_any(&self) -> Option<Job> {
        let me = WORKER.get();
        if me < self.locals.len() {
            if let Some(t) = lock(&self.locals[me]).pop_back() {
                return Some(t.job);
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t.job);
        }
        let n = self.locals.len();
        let start = if me < n { me + 1 } else { 0 };
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            if let Some(t) = lock(&self.locals[victim]).pop_front() {
                return Some(t.job);
            }
        }
        None
    }

    /// Takes one pending job belonging to the given scope, scanning every
    /// queue (a scope's jobs may have been pushed by any thread running
    /// one of its jobs).
    fn find_scoped(&self, tag: usize) -> Option<Job> {
        let me = WORKER.get();
        if me < self.locals.len() {
            if let Some(job) = take_tagged(&self.locals[me], tag, true) {
                return Some(job);
            }
        }
        if let Some(job) = take_tagged(&self.injector, tag, false) {
            return Some(job);
        }
        for (victim, local) in self.locals.iter().enumerate() {
            if victim == me {
                continue;
            }
            if let Some(job) = take_tagged(local, tag, false) {
                return Some(job);
            }
        }
        None
    }

    /// Queues a job on the calling worker's deque (or the injector when
    /// called from outside the pool) and wakes a sleeper.
    fn push(&self, tag: usize, job: Job) {
        let me = WORKER.get();
        let tagged = Tagged { tag, job };
        if me < self.locals.len() {
            lock(&self.locals[me]).push_back(tagged);
        } else {
            lock(&self.injector).push_back(tagged);
        }
        self.sleep.notify_all();
    }
}

pub(crate) struct ThreadPool {
    shared: Arc<Shared>,
    n_threads: usize,
}

thread_local! {
    /// This thread's index in the global pool; `usize::MAX` outside it.
    static WORKER: Cell<usize> = const { Cell::new(usize::MAX) };
}

static POOL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-created global pool.
pub(crate) fn global() -> &'static ThreadPool {
    POOL.get_or_init(ThreadPool::from_env)
}

impl ThreadPool {
    fn from_env() -> ThreadPool {
        let n = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Condvar::new(),
        });
        for index in 0..n {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                // Headroom for deeply nested joins (inline help frames
                // scale with the computation's nesting depth).
                .stack_size(8 * 1024 * 1024)
                .spawn(move || worker_loop(shared, index))
                .expect("failed to spawn pool worker");
        }
        ThreadPool {
            shared,
            n_threads: n,
        }
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.n_threads
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.set(index);
    loop {
        match shared.find_any() {
            // Scope jobs catch their own panics; the extra guard keeps a
            // stray panicking job from killing the worker.
            Some(job) => drop(panic::catch_unwind(AssertUnwindSafe(job))),
            None => {
                let guard = lock(&shared.injector);
                if guard.is_empty() {
                    // The timeout bounds the one benign race: a peer
                    // pushing to its local deque between our scan and
                    // this wait (local pushes notify without holding the
                    // injector lock).
                    let _ = shared.sleep.wait_timeout(guard, Duration::from_millis(2));
                }
            }
        }
    }
}

struct ScopeState {
    /// Spawned jobs not yet finished.
    pending: AtomicUsize,
    /// First panic payload out of any spawned job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A spawn handle tied to the borrow region `'scope`, in the shape of
/// `rayon::Scope`. Spawned closures may borrow anything that outlives
/// the enclosing [`scope`] call.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    /// Invariance over `'scope` (as in rayon): the region must not be
    /// allowed to shrink behind the borrow checker's back.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// Runs `f` with a [`Scope`] and does not return until every job spawned
/// on it has finished. While waiting, the calling thread executes pending
/// pool jobs rather than parking. A panic in `f` or in any spawned job is
/// resurfaced here (after all jobs finished, so borrows stay sound).
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let state = Arc::new(ScopeState {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let s = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    let shared = &global().shared;
    let tag = Arc::as_ptr(&state) as usize;
    while state.pending.load(Ordering::Acquire) != 0 {
        // Help with this scope's own jobs only — see the module docs for
        // why inlining unrelated jobs here would unbound the stack.
        match shared.find_scoped(tag) {
            Some(job) => drop(panic::catch_unwind(AssertUnwindSafe(job))),
            None => {
                let guard = lock(&shared.injector);
                if state.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                let _ = shared.sleep.wait_timeout(guard, Duration::from_micros(500));
            }
        }
    }
    let job_panic = lock(&state.panic).take();
    match result {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = job_panic {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. On a one-thread pool the job runs inline
    /// (identical semantics, no cross-thread handoff).
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        let pool = global();
        if pool.num_threads() <= 1 {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = lock(&self.state.panic);
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` blocks until `pending` drops back to zero, so
        // this job — and everything it borrows for 'scope — outlives its
        // execution; the pool never holds it past scope exit.
        let job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let tag = Arc::as_ptr(&self.state) as usize;
        pool.shared.push(
            tag,
            Box::new(move || {
                if let Err(p) = panic::catch_unwind(AssertUnwindSafe(job)) {
                    let mut slot = lock(&state.panic);
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                state.pending.fetch_sub(1, Ordering::AcqRel);
                global().shared.sleep.notify_all();
            }),
        );
    }
}

/// Runs both closures, potentially in parallel, and returns both results
/// — rayon's fundamental primitive. The second closure is offered to the
/// pool while the first runs on the calling thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|| rb = Some(oper_b()));
        oper_a()
    });
    (ra, rb.expect("join: second branch did not run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn scope_runs_every_spawn() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_spawns_may_borrow_locals() {
        let mut out = vec![0u64; 32];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = (i * i) as u64);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
    }

    #[test]
    fn panicking_spawn_propagates_and_pool_survives() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("boom in pool job"));
            });
        }));
        assert!(caught.is_err());
        // The pool keeps working afterwards.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
