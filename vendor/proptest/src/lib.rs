//! Offline stand-in for the subset of the `proptest` 1.4 API this
//! workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_filter_map`, range and tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repo root). It generates
//! random cases deterministically (seeded from the test name, so runs
//! are reproducible) and reports the failing case's values via the
//! strategy `Debug` output. It does **not** shrink failures — a failing
//! case is reported as generated.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; another case is generated.
    Reject,
}

impl TestCaseError {
    /// A failure carrying a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Runner configuration (only the case count is modeled).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// A value generator. The only requirement on implementors is producing
/// a fresh value per call; the combinators mirror proptest's.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps and filters: `None` rejects the draw and another is made.
    fn prop_filter_map<O: fmt::Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected 10000 consecutive draws",
            self.whence
        );
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_float_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    };
}
impl_float_strategy!(f64);
impl_float_strategy!(f32);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length specification for [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec-length range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property test: `cases` generated inputs, deterministic
/// seed per test name, `Reject` retries capped to avoid livelock.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable seeds across runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(64).max(1024),
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: case {} of {} failed: {msg}",
                    passed + 1,
                    config.cases
                )
            }
        }
    }
}

/// The proptest prelude: everything call sites import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0.0..1.0f64, v in prop::collection::vec(0u32..9, 1..10)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case (another input is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_and_tuples(x in -5.0..5.0f64, (a, b) in (0u32..10, 1usize..4)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "bad len {}", v.len());
            for &e in &v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn map_and_assume(n in (0u64..1000).prop_map(|n| n * 2)) {
            prop_assume!(n > 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in prop::collection::vec(-1.0..1.0f64, 64..=64)) {
            prop_assert_eq!(v.len(), 64);
        }
    }

    #[test]
    fn filter_map_rejects_and_retries() {
        use crate::{Strategy, TestRng};
        let s = (0u32..10).prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_surface_as_panics() {
        crate::run_cases(&ProptestConfig::with_cases(5), "always_fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
