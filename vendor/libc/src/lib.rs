//! Offline stand-in for the tiny slice of `libc` 0.2 this workspace
//! uses: the `mmap`/`munmap` syscall bindings behind
//! `accelviz-store`'s memory-mapped chunk source, plus the constants
//! they take. The declarations match the POSIX prototypes, and the
//! constant values are the ones shared by Linux and the BSD family
//! (`PROT_READ == 1`, `MAP_PRIVATE == 2`); exotic platforms should use
//! the upstream crate instead, or force the store's pread fallback with
//! `ACCELVIZ_STORE_NO_MMAP=1`.

#![cfg_attr(not(unix), allow(unused))]
#![allow(non_camel_case_types)] // keep upstream libc's C-style names

/// Opaque byte type for raw pointers, as `libc::c_void`.
pub type c_void = core::ffi::c_void;
/// C `int`.
pub type c_int = i32;
/// C `size_t`.
pub type size_t = usize;
/// File offset type (`off_t`). 64-bit on every platform this workspace
/// targets.
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Private copy-on-write mapping (we only ever read).
pub const MAP_PRIVATE: c_int = 2;
/// The error return of `mmap` (`(void *) -1`).
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

#[cfg(unix)]
extern "C" {
    /// POSIX `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    /// POSIX `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn mmap_reads_back_what_was_written() {
        let path =
            std::env::temp_dir().join(format!("accelviz-libc-shim-test-{}", std::process::id()));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let f = std::fs::File::open(&path).unwrap();
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                payload.len(),
                PROT_READ,
                MAP_PRIVATE,
                f.as_raw_fd(),
                0,
            )
        };
        assert_ne!(
            ptr,
            MAP_FAILED,
            "mmap failed: {:?}",
            std::io::Error::last_os_error()
        );
        let view = unsafe { std::slice::from_raw_parts(ptr as *const u8, payload.len()) };
        assert_eq!(view, payload.as_slice());
        assert_eq!(unsafe { munmap(ptr, payload.len()) }, 0);
        let _ = std::fs::remove_file(&path);
    }
}
