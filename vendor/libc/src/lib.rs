//! Offline stand-in for the tiny slice of `libc` 0.2 this workspace
//! uses: the `mmap`/`munmap` syscall bindings behind
//! `accelviz-store`'s memory-mapped chunk source, and the
//! `poll`/`pipe`/`read`/`write`/`close` bindings behind
//! `accelviz-serve`'s event-driven reactor (readiness loop plus its
//! self-pipe waker), with the constants they take. The declarations
//! match the POSIX prototypes, and the constant values are the ones
//! shared by Linux and the BSD family (`PROT_READ == 1`,
//! `MAP_PRIVATE == 2`, `POLLIN == 1`, `POLLOUT == 4`); exotic platforms
//! should use the upstream crate instead, or force the store's pread
//! fallback with `ACCELVIZ_STORE_NO_MMAP=1` and the serve crate's
//! threaded backend with `ACCELVIZ_SERVE_BACKEND=threaded`.

#![cfg_attr(not(unix), allow(unused))]
#![allow(non_camel_case_types)] // keep upstream libc's C-style names

/// Opaque byte type for raw pointers, as `libc::c_void`.
pub type c_void = core::ffi::c_void;
/// C `int`.
pub type c_int = i32;
/// C `short`.
pub type c_short = i16;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t` — the signed return of `read(2)`/`write(2)`.
pub type ssize_t = isize;
/// File offset type (`off_t`). 64-bit on every platform this workspace
/// targets.
pub type off_t = i64;
/// The fd-count argument of `poll(2)`: `unsigned long` on Linux,
/// `unsigned int` on the BSDs.
#[cfg(target_os = "linux")]
pub type nfds_t = core::ffi::c_ulong;
/// The fd-count argument of `poll(2)`: `unsigned long` on Linux,
/// `unsigned int` on the BSDs.
#[cfg(not(target_os = "linux"))]
pub type nfds_t = core::ffi::c_uint;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Private copy-on-write mapping (we only ever read).
pub const MAP_PRIVATE: c_int = 2;
/// The error return of `mmap` (`(void *) -1`).
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `poll(2)` event: data may be read without blocking.
pub const POLLIN: c_short = 0x001;
/// `poll(2)` event: data may be written without blocking.
pub const POLLOUT: c_short = 0x004;
/// `poll(2)` revent: an error condition is pending on the fd.
pub const POLLERR: c_short = 0x008;
/// `poll(2)` revent: the peer hung up.
pub const POLLHUP: c_short = 0x010;
/// `poll(2)` revent: the fd is not open (a stale entry in the set).
pub const POLLNVAL: c_short = 0x020;

/// One entry of a `poll(2)` set, exactly as the kernel lays it out.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct pollfd {
    /// The file descriptor to watch (negative entries are skipped).
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Returned events (requested plus `POLLERR`/`POLLHUP`/`POLLNVAL`).
    pub revents: c_short,
}

#[cfg(unix)]
extern "C" {
    /// POSIX `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    /// POSIX `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    /// POSIX `poll(2)`: waits until one of `fds` is ready or `timeout`
    /// milliseconds pass (`-1` waits forever, `0` polls).
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;

    /// POSIX `pipe(2)`: fills `fds[0]` (read end) and `fds[1]` (write
    /// end).
    pub fn pipe(fds: *mut c_int) -> c_int;

    /// POSIX `read(2)` on a raw fd.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;

    /// POSIX `write(2)` on a raw fd.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;

    /// POSIX `close(2)` on a raw fd.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn mmap_reads_back_what_was_written() {
        let path =
            std::env::temp_dir().join(format!("accelviz-libc-shim-test-{}", std::process::id()));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let f = std::fs::File::open(&path).unwrap();
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                payload.len(),
                PROT_READ,
                MAP_PRIVATE,
                f.as_raw_fd(),
                0,
            )
        };
        assert_ne!(
            ptr,
            MAP_FAILED,
            "mmap failed: {:?}",
            std::io::Error::last_os_error()
        );
        let view = unsafe { std::slice::from_raw_parts(ptr as *const u8, payload.len()) };
        assert_eq!(view, payload.as_slice());
        assert_eq!(unsafe { munmap(ptr, payload.len()) }, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pipe_poll_read_write_roundtrip() {
        let mut fds = [-1 as c_int; 2];
        assert_eq!(unsafe { pipe(fds.as_mut_ptr()) }, 0);
        let (rd, wr) = (fds[0], fds[1]);

        // An empty pipe polls not-ready within the timeout.
        let mut set = [pollfd {
            fd: rd,
            events: POLLIN,
            revents: 0,
        }];
        let n = unsafe { poll(set.as_mut_ptr(), set.len() as nfds_t, 10) };
        assert_eq!(n, 0, "nothing to read yet");

        // A written byte makes the read end readable and comes back out.
        let byte = [0x5au8];
        assert_eq!(
            unsafe { write(wr, byte.as_ptr() as *const c_void, 1) },
            1,
            "pipe write failed: {:?}",
            std::io::Error::last_os_error()
        );
        set[0].revents = 0;
        let n = unsafe { poll(set.as_mut_ptr(), set.len() as nfds_t, 1000) };
        assert_eq!(n, 1);
        assert_ne!(set[0].revents & POLLIN, 0, "POLLIN must be reported");
        let mut got = [0u8; 4];
        let n = unsafe { read(rd, got.as_mut_ptr() as *mut c_void, got.len()) };
        assert_eq!(n, 1);
        assert_eq!(got[0], 0x5a);

        assert_eq!(unsafe { close(rd) }, 0);
        assert_eq!(unsafe { close(wr) }, 0);
    }
}
