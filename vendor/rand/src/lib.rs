//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over float and integer ranges.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead (see `vendor/` in the repo root). The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the repo's reproducibility tests
//! require. It is **not** the ChaCha12 generator of the real `StdRng`,
//! so absolute sampled values differ from upstream `rand`; everything in
//! this workspace only relies on same-seed-same-stream determinism.

use std::ops::Range;

/// Minimal core RNG interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty, $bits:expr, $mant:expr) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Uniform in [0, 1) with full mantissa precision.
                let u = (rng.next_u64() >> ($bits - $mant)) as $t / (1u64 << $mant) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    self.start.max(self.end - (self.end - self.start) * 1e-9)
                } else {
                    v
                }
            }
        }
    };
}
impl_float_range!(f64, 64, 53);
impl_float_range!(f32, 64, 24);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — negligible for the spans
                // used here and irrelevant to any test in this repo.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5u32..9);
            assert!((5..9).contains(&i));
            let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn full_f64_mantissa_is_exercised() {
        let mut rng = StdRng::seed_from_u64(3);
        // With 53-bit resolution, 1000 draws collide with probability ~0.
        let mut seen: Vec<u64> = (0..1000)
            .map(|_| rng.gen_range(0.0..1.0f64).to_bits())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000);
    }
}
