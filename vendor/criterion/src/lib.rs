//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repo root). It is a real —
//! if statistically simple — harness: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and the per-iteration
//! min/mean of the samples is printed. No HTML reports, outlier
//! rejection, or regression tracking.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, used to print a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration over the measured samples.
    mean_s: f64,
    /// Fastest sample, seconds per iteration.
    min_s: f64,
}

impl Bencher {
    /// Runs `f` once for warmup, then `samples` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.mean_s = total.as_secs_f64() / self.samples as f64;
        self.min_s = min.as_secs_f64();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            mean_s: 0.0,
            min_s: 0.0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            mean_s: 0.0,
            min_s: 0.0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_s > 0.0 => {
                format!("  {:12.0} elem/s", n as f64 / b.mean_s)
            }
            Some(Throughput::Bytes(n)) if b.mean_s > 0.0 => {
                format!("  {:12.0} B/s", n as f64 / b.mean_s)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:>12} min {:>12} ({} samples){rate}",
            self.name,
            id.0,
            format_seconds(b.mean_s),
            format_seconds(b.min_s),
            self.sample_size,
        );
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.0.clone();
        self.benchmark_group(name).bench_function(id, f);
        self
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs_and_measures() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("scale", 64).0, "scale/64");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
