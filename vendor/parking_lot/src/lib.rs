//! Offline stand-in for the subset of the `parking_lot` 0.12 API this
//! workspace uses: non-poisoning [`Mutex`] and [`RwLock`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `vendor/` in the repo root). Locks are backed
//! by `std::sync`; parking_lot's headline property call sites rely on —
//! `lock()` returning a guard directly, with no poisoning `Result` — is
//! preserved by recovering the inner guard when a prior holder
//! panicked.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
